"""The serializable digest of one telemetry session.

A :class:`TelemetrySummary` is what survives the run: it rides on
:class:`~repro.sim.metrics.RunResult` (a ``compare=False`` field, like
the validation summary -- observing a run never changes what it
measured), round-trips exactly through JSON for the on-disk result
cache, pickles across process-pool hops, and merges across the points
of a sweep.

Naming scheme (see ``docs/OBSERVABILITY.md`` for the full catalogue):
unlabeled counters are network-wide totals; ``{node=N}`` labels carry
per-router detail; ``{port=<direction>}`` labels carry per-direction
crossbar/link detail.  Denominators that depend on the run length
(``link_cycles``, ``router_cycles``) are materialized as counters at
finalize time so every derived rate stays a ratio of two mergeable
counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from .registry import MetricRegistry

#: Canonical metric names recorded by the built-in collectors.
SPEC_ATTEMPTED = "speculation_attempted"
SPEC_WON = "speculation_won"
SPEC_LOST = "speculation_lost"
SA_GRANTS = "switch_grants"
CREDIT_STALLS = "credit_stall_cycles"
FLITS_INJECTED = "flits_injected"
FLITS_EJECTED = "flits_ejected"
FLITS_FORWARDED = "flits_forwarded"
PACKETS_ROUTED = "packets_routed"
CROSSBAR_TRAVERSALS = "crossbar_traversals"
GRANTS_BY_INPUT = "grants_by_input_port"
LINK_CYCLES = "link_cycles"
ROUTER_CYCLES = "router_cycles"
VC_OCCUPANCY = "vc_buffer_occupancy"
BUFFERED_FLITS = "network_buffered_flits"
ACTIVE_ROUTERS = "active_routers"
IDLE_ROUTER_SAMPLES = "idle_router_samples"
OCCUPANCY_SAMPLES = "occupancy_samples"


@dataclass
class TelemetrySummary:
    """Everything one telemetry session observed, in mergeable form."""

    sample_period: int
    window_cycles: int
    cycles_observed: int
    #: How many runs were folded into this summary (sweep merges).
    runs: int = 1
    metrics: MetricRegistry = field(default_factory=MetricRegistry)
    #: Per-window delta dicts (see :mod:`repro.telemetry.timeseries`).
    #: Window history is per-run; merged summaries drop it (cycle spans
    #: of different runs are not comparable).
    windows: List[Dict[str, Any]] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Derived rates.
    # ------------------------------------------------------------------

    def _value(self, name: str, **labels) -> float:
        return self.metrics.value(name, **labels)

    @property
    def speculation_attempted(self) -> float:
        return self._value(SPEC_ATTEMPTED)

    @property
    def speculation_won(self) -> float:
        return self._value(SPEC_WON)

    @property
    def speculation_win_rate(self) -> float:
        """Fraction of speculative switch grants that moved a flit.

        0.0 when the router never speculated (wormhole/non-speculative
        configurations) rather than a division error.
        """
        attempted = self.speculation_attempted
        if not attempted:
            return 0.0
        return self.speculation_won / attempted

    @property
    def channel_utilization(self) -> float:
        """Fraction of inter-router link-cycles carrying a flit."""
        link_cycles = sum(
            self._value(LINK_CYCLES, port=port)
            for port in self.directions()
        )
        if not link_cycles:
            return 0.0
        traversals = sum(
            self._value(CROSSBAR_TRAVERSALS, port=port)
            for port in self.directions()
        )
        return traversals / link_cycles

    def port_utilization(self, port: str) -> float:
        """Link utilization of one direction (``east`` .. ``local``)."""
        link_cycles = self._value(LINK_CYCLES, port=port)
        if not link_cycles:
            return 0.0
        return self._value(CROSSBAR_TRAVERSALS, port=port) / link_cycles

    def directions(self) -> List[str]:
        """Non-local directions with recorded link capacity."""
        return [
            port for port in ("east", "west", "north", "south")
            if self.metrics.get(LINK_CYCLES, port=port) is not None
        ]

    @property
    def mean_vc_occupancy(self) -> float:
        """Mean sampled flits per virtual-channel buffer."""
        histogram = self.metrics.get(VC_OCCUPANCY)
        return histogram.mean if histogram is not None else 0.0

    @property
    def peak_vc_occupancy(self) -> float:
        gauge = self.metrics.get(BUFFERED_FLITS)
        if gauge is None or gauge.maximum is None:
            return 0.0
        return gauge.maximum

    @property
    def credit_stall_rate(self) -> float:
        """Credit-stall events per router-cycle."""
        router_cycles = self._value(ROUTER_CYCLES)
        if not router_cycles:
            return 0.0
        return self._value(CREDIT_STALLS) / router_cycles

    def grant_share_by_input(self) -> Dict[str, float]:
        """Fraction of switch grants won by each input direction."""
        shares = {
            port: self._value(GRANTS_BY_INPUT, port=port)
            for port in ("local", "east", "west", "north", "south")
        }
        total = sum(shares.values())
        if not total:
            return {}
        return {port: count / total for port, count in shares.items()}

    # ------------------------------------------------------------------
    # Merging and serialization.
    # ------------------------------------------------------------------

    def merge(self, other: "TelemetrySummary") -> "TelemetrySummary":
        """Fold another run's summary into this one (in place)."""
        if other.sample_period != self.sample_period:
            raise ValueError(
                "cannot merge summaries with different sample periods: "
                f"{self.sample_period} vs {other.sample_period}"
            )
        self.cycles_observed += other.cycles_observed
        self.runs += other.runs
        self.metrics.merge(other.metrics)
        # Window timelines of distinct runs are not comparable.
        self.windows = []
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sample_period": self.sample_period,
            "window_cycles": self.window_cycles,
            "cycles_observed": self.cycles_observed,
            "runs": self.runs,
            "metrics": self.metrics.to_dict(),
            "windows": [dict(w) for w in self.windows],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TelemetrySummary":
        return cls(
            sample_period=data["sample_period"],
            window_cycles=data["window_cycles"],
            cycles_observed=data["cycles_observed"],
            runs=data.get("runs", 1),
            metrics=MetricRegistry.from_dict(data["metrics"]),
            windows=[dict(w) for w in data.get("windows", [])],
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TelemetrySummary):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def describe(self) -> str:
        parts = [
            f"{self.cycles_observed:,} cycles observed",
            f"{len(self.windows)} windows",
        ]
        if self.speculation_attempted:
            parts.append(f"spec win {self.speculation_win_rate:.1%}")
        parts.append(f"links {self.channel_utilization:.1%} utilized")
        return ", ".join(parts)


def merge_summaries(
    summaries: Iterable[Optional[TelemetrySummary]],
) -> Optional[TelemetrySummary]:
    """Merge the non-None summaries of a sweep into one (None if none)."""
    merged: Optional[TelemetrySummary] = None
    for summary in summaries:
        if summary is None:
            continue
        if merged is None:
            merged = TelemetrySummary.from_dict(summary.to_dict())
        else:
            merged.merge(summary)
    return merged
