"""Collectors: the probe points one telemetry session observes.

Each :class:`Collector` attaches to a :class:`~repro.sim.network.Network`
and feeds the session's :class:`~repro.telemetry.registry.MetricRegistry`
and timeseries windows.  Two observation styles, mirroring the
validation probes:

* *sampled* -- :meth:`Collector.sample` runs every ``sample_period``
  cycles on settled end-of-cycle state (buffer occupancy, activity).
  Sampling never wakes a sleeping router: a router with ``active``
  False provably holds no flits (see ``BaseRouter.is_idle``), so its
  occupancy is integrated analytically as zero without touching its
  input VCs or re-arming it.
* *event-hooked* -- :class:`CrossbarActivityCollector` wraps each
  router's ``_traverse`` with a two-increment closure at attach time,
  giving exact per-direction crossbar counts; the wrapper exists only
  while telemetry is enabled, so a plain run pays nothing.

Aggregates that routers already count (speculation, credit stalls,
switch grants) are *not* hooked: they are harvested as deltas of
``RouterStats`` at window boundaries, which costs one 64-router scan
per window instead of per event.
"""

from __future__ import annotations

from typing import Dict, List

from ..sim.topology import LOCAL, NUM_PORTS, PORT_NAMES
from . import summary as names
from .config import TelemetryConfig
from .registry import MetricRegistry


class Collector:
    """Base collector: attach, sample, window flush, finalize, detach."""

    name = "collector"

    def attach(self, network, registry: MetricRegistry) -> None:
        """Snapshot baselines / install wrappers."""

    def sample(self, network, registry: MetricRegistry, cycle: int) -> None:
        """Observe settled state (called every ``sample_period`` cycles)."""

    def window(self, network, values: Dict[str, float]) -> None:
        """Contribute this window's deltas to ``values`` at flush time."""

    def finalize(self, network, registry: MetricRegistry,
                 cycles: int) -> None:
        """Record whole-run totals (called once, after the last cycle)."""

    def detach(self, network) -> None:
        """Undo :meth:`attach`'s wrappers."""


def _stats_totals(network) -> Dict[str, int]:
    """One scan of every router's counters, as the canonical names."""
    spec_grants = spec_wasted = sa_grants = stalls = forwarded = routed = 0
    for router in network.routers:
        stats = router.stats
        spec_grants += stats.spec_grants
        spec_wasted += stats.spec_wasted
        sa_grants += stats.sa_grants
        stalls += stats.credits_stalled
        forwarded += stats.flits_forwarded
        routed += stats.packets_routed
    return {
        names.SPEC_ATTEMPTED: spec_grants,
        names.SPEC_WON: spec_grants - spec_wasted,
        names.SPEC_LOST: spec_wasted,
        names.SA_GRANTS: sa_grants,
        names.CREDIT_STALLS: stalls,
        names.FLITS_FORWARDED: forwarded,
        names.PACKETS_ROUTED: routed,
    }


class ThroughputCollector(Collector):
    """Network-level flit/packet/grant/speculation/stall deltas.

    Covers the per-window rate view of everything the routers already
    count, plus the per-router speculation and credit-stall breakdown
    the paper's rate arguments need (``{node=N}`` labels at finalize).
    """

    name = "throughput"

    def __init__(self) -> None:
        self._last: Dict[str, int] = {}
        self._last_injected = 0
        self._last_ejected = 0

    def attach(self, network, registry: MetricRegistry) -> None:
        self._last = _stats_totals(network)
        self._last_injected = network.total_flits_injected()
        self._last_ejected = network.total_flits_ejected()

    def window(self, network, values: Dict[str, float]) -> None:
        totals = _stats_totals(network)
        for name, total in totals.items():
            values[name] = total - self._last.get(name, 0)
        self._last = totals
        injected = network.total_flits_injected()
        ejected = network.total_flits_ejected()
        values[names.FLITS_INJECTED] = injected - self._last_injected
        values[names.FLITS_EJECTED] = ejected - self._last_ejected
        self._last_injected = injected
        self._last_ejected = ejected

    def finalize(self, network, registry: MetricRegistry,
                 cycles: int) -> None:
        for name, total in _stats_totals(network).items():
            registry.counter(name).inc(total)
        registry.counter(names.FLITS_INJECTED).inc(
            network.total_flits_injected()
        )
        registry.counter(names.FLITS_EJECTED).inc(
            network.total_flits_ejected()
        )
        registry.counter(names.ROUTER_CYCLES).inc(
            len(network.routers) * cycles
        )
        for router in network.routers:
            stats = router.stats
            if stats.spec_grants:
                node = router.node
                registry.counter(
                    names.SPEC_ATTEMPTED, node=node
                ).inc(stats.spec_grants)
                registry.counter(
                    names.SPEC_WON, node=node
                ).inc(stats.spec_grants - stats.spec_wasted)
                registry.counter(
                    names.SPEC_LOST, node=node
                ).inc(stats.spec_wasted)
            if stats.credits_stalled:
                registry.counter(
                    names.CREDIT_STALLS, node=router.node
                ).inc(stats.credits_stalled)


class CrossbarActivityCollector(Collector):
    """Exact per-direction crossbar traversals and grant fairness.

    Wraps ``router._traverse`` (the single point every forwarded flit
    passes through) with a closure that bumps two per-router integer
    rows: traversals by *output* direction (channel utilization) and by
    *input* direction (arbiter grant distribution -- each traversal is
    one executed switch grant).
    """

    name = "crossbar"

    def __init__(self) -> None:
        self._out_rows: List[List[int]] = []
        self._in_rows: List[List[int]] = []
        self._wrapped: List[object] = []

    def attach(self, network, registry: MetricRegistry) -> None:
        self._out_rows = [[0] * NUM_PORTS for _ in network.routers]
        self._in_rows = [[0] * NUM_PORTS for _ in network.routers]
        self._wrapped = list(network.routers)
        for router, out_row, in_row in zip(
            network.routers, self._out_rows, self._in_rows
        ):
            original = router._traverse

            def traverse(ivc, cycle, used_outputs, _original=original,
                         _out=out_row, _in=in_row):
                out_port = ivc.route  # read before a tail resets it
                _original(ivc, cycle, used_outputs)
                _out[out_port] += 1
                _in[ivc.port] += 1

            router._traverse = traverse

    def detach(self, network) -> None:
        for router in self._wrapped:
            if "_traverse" in router.__dict__:
                del router._traverse
        self._wrapped = []

    def window(self, network, values: Dict[str, float]) -> None:
        # Per-direction detail stays whole-run; windows get the network
        # total through ThroughputCollector's flits_forwarded delta.
        pass

    def finalize(self, network, registry: MetricRegistry,
                 cycles: int) -> None:
        # Link capacity per direction: how many physical channels exist
        # (mesh edges have fewer), times the observed cycles.
        links_per_port = [0] * NUM_PORTS
        for _node, port, _neighbor in network.mesh.links():
            links_per_port[port] += 1
        links_per_port[LOCAL] = len(network.routers)  # ejection channels
        for port in range(NUM_PORTS):
            direction = PORT_NAMES[port]
            traversals = sum(row[port] for row in self._out_rows)
            grants = sum(row[port] for row in self._in_rows)
            registry.counter(
                names.CROSSBAR_TRAVERSALS, port=direction
            ).inc(traversals)
            registry.counter(
                names.GRANTS_BY_INPUT, port=direction
            ).inc(grants)
            registry.counter(names.LINK_CYCLES, port=direction).inc(
                links_per_port[port] * cycles
            )


class OccupancyCollector(Collector):
    """Sampled per-VC buffer occupancy and router activity.

    Active routers are scanned VC by VC; sleeping routers contribute
    their (provably zero) occupancy analytically, without being touched.
    """

    name = "occupancy"

    def __init__(self) -> None:
        self._ivcs_per_router = NUM_PORTS
        self._window_buffered = 0
        self._window_samples = 0

    def attach(self, network, registry: MetricRegistry) -> None:
        self._ivcs_per_router = NUM_PORTS * network.config.num_vcs

    def sample(self, network, registry: MetricRegistry, cycle: int) -> None:
        histogram = registry.histogram(names.VC_OCCUPANCY)
        active = 0
        idle = 0
        buffered = 0
        for router in network.routers:
            if not router.active:
                # Idle span integrated analytically: an inactive router
                # has every input VC empty, so this sample is exactly
                # `ivcs_per_router` zero observations.
                idle += 1
                continue
            active += 1
            for ivc in router._all_ivcs:
                occupancy = len(ivc.buffer)
                histogram.observe(occupancy)
                buffered += occupancy
        if idle:
            histogram.observe(0, count=idle * self._ivcs_per_router)
            registry.counter(names.IDLE_ROUTER_SAMPLES).inc(idle)
        registry.counter(names.OCCUPANCY_SAMPLES).inc(1)
        registry.gauge(names.BUFFERED_FLITS).set(buffered)
        registry.gauge(names.ACTIVE_ROUTERS).set(active)
        self._window_buffered += buffered
        self._window_samples += 1

    def window(self, network, values: Dict[str, float]) -> None:
        values["buffered_flits_sampled"] = self._window_buffered
        values["occupancy_samples"] = self._window_samples
        self._window_buffered = 0
        self._window_samples = 0


def default_collectors(config: TelemetryConfig) -> List[Collector]:
    """The standard collector set for one run."""
    return [
        ThroughputCollector(),
        CrossbarActivityCollector(),
        OccupancyCollector(),
    ]
