"""Bounded-memory windowed timeseries.

A :class:`Timeseries` holds a sequence of :class:`Window`\\ s, each a
``[start, end)`` cycle span with a flat ``{metric: value}`` dict of
deltas accumulated over that span.  Memory is bounded: when the ring
reaches ``max_windows``, adjacent windows merge pairwise, so a long run
keeps a fixed number of windows whose early history is progressively
coarser while the recent past stays at full resolution.  Window values
are *deltas* (events in the span), so merging is plain summation and
rates are always ``value / (end - start)``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


class Window:
    """One ``[start, end)`` span of accumulated metric deltas."""

    __slots__ = ("start", "end", "values")

    def __init__(self, start: int, end: int,
                 values: Optional[Dict[str, float]] = None) -> None:
        if end <= start:
            raise ValueError(f"empty window [{start}, {end})")
        self.start = start
        self.end = end
        self.values: Dict[str, float] = dict(values or {})

    @property
    def cycles(self) -> int:
        return self.end - self.start

    def rate(self, metric: str) -> float:
        """Events per cycle over this window."""
        return self.values.get(metric, 0.0) / self.cycles

    def merge(self, other: "Window") -> "Window":
        """A new window spanning both, with summed deltas."""
        merged = Window(min(self.start, other.start),
                        max(self.end, other.end), self.values)
        for metric, value in other.values.items():
            merged.values[metric] = merged.values.get(metric, 0.0) + value
        return merged

    def to_dict(self) -> Dict[str, Any]:
        return {"start": self.start, "end": self.end,
                "values": dict(self.values)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Window":
        return cls(data["start"], data["end"], data["values"])

    def __repr__(self) -> str:
        return f"Window([{self.start}, {self.end}), {len(self.values)} metrics)"


class Timeseries:
    """An append-only, self-compacting list of windows."""

    def __init__(self, max_windows: int) -> None:
        if max_windows < 2:
            raise ValueError(f"max_windows must be >= 2, got {max_windows}")
        self.max_windows = max_windows
        self.windows: List[Window] = []

    def append(self, window: Window) -> None:
        if self.windows and window.start < self.windows[-1].end:
            raise ValueError(
                f"windows must be appended in order: {window.start} < "
                f"{self.windows[-1].end}"
            )
        self.windows.append(window)
        if len(self.windows) >= self.max_windows:
            self.compact()

    def compact(self) -> None:
        """Merge adjacent pairs, halving the window count."""
        merged: List[Window] = []
        pending: Optional[Window] = None
        for window in self.windows:
            if pending is None:
                pending = window
            else:
                merged.append(pending.merge(window))
                pending = None
        if pending is not None:
            merged.append(pending)
        self.windows = merged

    def merged(self) -> Optional[Window]:
        """The whole series collapsed into a single window."""
        if not self.windows:
            return None
        total = self.windows[0]
        for window in self.windows[1:]:
            total = total.merge(window)
        return total

    def __len__(self) -> int:
        return len(self.windows)

    def __iter__(self):
        return iter(self.windows)

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [window.to_dict() for window in self.windows]
