"""Serialize telemetry to files: JSONL, CSV and Chrome ``trace_event``.

Three formats for three audiences:

* :func:`export_jsonl` -- the lossless machine form: one JSON object
  per line (``summary`` header, then ``metric`` and ``window`` records),
  greppable and streamable.
* :func:`export_csv` -- the metric catalogue as a flat spreadsheet;
  :func:`export_windows_csv` -- the per-window timeline with one column
  per windowed metric.
* :func:`export_chrome_trace` -- the Chrome ``trace_event`` JSON that
  ``chrome://tracing`` and https://ui.perfetto.dev open directly.  Flit
  pipeline events (from :class:`~repro.sim.trace.Tracer`) become
  instant events on one track per router; window rates become counter
  tracks.  One simulated cycle is rendered as one microsecond.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..sim.trace import Tracer
from .summary import TelemetrySummary

PathLike = Union[str, Path]


def export_jsonl(summary: TelemetrySummary, path: PathLike) -> Path:
    """Write the summary as line-delimited JSON; returns the path."""
    path = Path(path)
    data = summary.to_dict()
    with path.open("w") as handle:
        header = {
            "type": "summary",
            **{k: v for k, v in data.items() if k not in ("metrics", "windows")},
            "speculation_win_rate": summary.speculation_win_rate,
            "channel_utilization": summary.channel_utilization,
        }
        handle.write(json.dumps(header) + "\n")
        for name, payload in sorted(data["metrics"].items()):
            handle.write(
                json.dumps({"type": "metric", "name": name, **payload}) + "\n"
            )
        for window in data["windows"]:
            handle.write(json.dumps({"type": "window", **window}) + "\n")
    return path


def export_csv(summary: TelemetrySummary, path: PathLike) -> Path:
    """Write the metric catalogue as a flat CSV; returns the path."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["name", "kind", "value", "samples", "mean", "min", "max"]
        )
        for name, metric in summary.metrics.items():
            if metric.kind == "counter":
                writer.writerow([name, metric.kind, metric.value,
                                 "", "", "", ""])
            elif metric.kind == "gauge":
                writer.writerow([
                    name, metric.kind, metric.value, metric.samples,
                    metric.mean, metric.minimum, metric.maximum,
                ])
            else:  # histogram
                writer.writerow([
                    name, metric.kind, metric.total, metric.observations,
                    metric.mean, "", "",
                ])
    return path


def export_windows_csv(summary: TelemetrySummary, path: PathLike) -> Path:
    """Write the window timeline as CSV (one column per metric)."""
    path = Path(path)
    columns: List[str] = []
    for window in summary.windows:
        for name in window["values"]:
            if name not in columns:
                columns.append(name)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["start", "end"] + columns)
        for window in summary.windows:
            values = window["values"]
            writer.writerow(
                [window["start"], window["end"]]
                + [values.get(name, 0) for name in columns]
            )
    return path


def chrome_trace_events(
    summary: Optional[TelemetrySummary] = None,
    tracer: Optional[Tracer] = None,
) -> List[Dict[str, Any]]:
    """Build the ``traceEvents`` list (1 cycle == 1 us)."""
    events: List[Dict[str, Any]] = []
    if tracer is not None:
        nodes = sorted({event.node for event in tracer.events})
        for node in nodes:
            events.append({
                "ph": "M", "pid": 0, "tid": node, "name": "thread_name",
                "args": {"name": f"router {node}"},
            })
        for event in tracer.events:
            events.append({
                "ph": "i", "s": "t", "pid": 0, "tid": event.node,
                "ts": event.cycle, "name": event.kind.value,
                "args": {
                    "packet": event.packet_id, "flit": event.flit_index,
                    "port": event.port, "vc": event.vc,
                },
            })
    if summary is not None:
        for window in summary.windows:
            cycles = max(1, window["end"] - window["start"])
            for name, value in sorted(window["values"].items()):
                events.append({
                    "ph": "C", "pid": 0, "ts": window["start"],
                    "name": name,
                    "args": {"per_cycle": value / cycles},
                })
    return events


def export_chrome_trace(
    path: PathLike,
    summary: Optional[TelemetrySummary] = None,
    tracer: Optional[Tracer] = None,
) -> Path:
    """Write a Chrome ``trace_event`` file (open in Perfetto)."""
    path = Path(path)
    payload = {
        "traceEvents": chrome_trace_events(summary, tracer),
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.telemetry", "time_unit": "1us=1cycle"},
    }
    path.write_text(json.dumps(payload))
    return path
