"""Streaming observability for simulation runs.

The telemetry subsystem watches a run from the outside: collectors hook
the probe points the simulator already exposes (speculation counters,
crossbar traversals, VC buffers, credit stalls), a windowed timeseries
keeps a bounded-memory rate history, and the whole session folds into a
serializable :class:`TelemetrySummary` that rides on
:class:`~repro.sim.metrics.RunResult` -- through the result cache,
across process pools, and merged over sweeps.

Off by default and free when off: the engine's per-step hook is a
single ``is not None`` test, no wrappers are installed, and a telemetry
run produces bit-identical simulation results (enforced by the
``telemetry_on_vs_off`` differential oracle).

Enable per run or per experiment::

    from repro.runtime import Experiment
    from repro.telemetry import TelemetryConfig

    result = Experiment(telemetry=True).point(config)
    print(result.telemetry.speculation_win_rate)

See ``docs/OBSERVABILITY.md`` for the metric catalogue, the sampling
model, and the Perfetto export walkthrough.
"""

from .config import TelemetryConfig
from .registry import Counter, Gauge, Histogram, MetricRegistry
from .timeseries import Timeseries, Window
from .summary import TelemetrySummary, merge_summaries
from .collectors import (
    Collector,
    CrossbarActivityCollector,
    OccupancyCollector,
    ThroughputCollector,
    default_collectors,
)
from .session import TelemetrySession, resolve_telemetry
from .exporters import (
    chrome_trace_events,
    export_chrome_trace,
    export_csv,
    export_jsonl,
    export_windows_csv,
)

__all__ = [
    "TelemetryConfig",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "Timeseries",
    "Window",
    "TelemetrySummary",
    "merge_summaries",
    "Collector",
    "CrossbarActivityCollector",
    "OccupancyCollector",
    "ThroughputCollector",
    "default_collectors",
    "TelemetrySession",
    "resolve_telemetry",
    "chrome_trace_events",
    "export_chrome_trace",
    "export_csv",
    "export_jsonl",
    "export_windows_csv",
]
