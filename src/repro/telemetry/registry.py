"""The metric registry: named counters, gauges and fixed-bucket histograms.

A :class:`MetricRegistry` is the flat namespace one telemetry session
records into.  Metrics are identified by a name plus an optional label
set (``counter("crossbar_traversals", port="east")``), mirroring the
Prometheus data model at a fraction of the machinery: everything is a
plain python number underneath, serialization is a nested dict, and two
registries merge by summing counters/histograms and combining gauge
extrema -- which is exactly what sweep-level aggregation needs.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: A metric identity: name plus sorted ``(label, value)`` pairs.
MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, labels: Dict[str, Any]) -> MetricKey:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


def _key_str(key: MetricKey) -> str:
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


def _parse_key(text: str) -> MetricKey:
    if "{" not in text:
        return text, ()
    name, _, rest = text.partition("{")
    rest = rest.rstrip("}")
    labels = tuple(
        tuple(pair.split("=", 1)) for pair in rest.split(",") if pair
    )
    return name, labels  # type: ignore[return-value]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self, value: float = 0) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def to_dict(self) -> Dict[str, Any]:
        return {"value": self.value}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Counter":
        return cls(data["value"])


class Gauge:
    """A sampled instantaneous value, with running extrema and mean."""

    __slots__ = ("value", "samples", "total", "minimum", "maximum")
    kind = "gauge"

    def __init__(self, value: float = 0.0, samples: int = 0,
                 total: float = 0.0, minimum: Optional[float] = None,
                 maximum: Optional[float] = None) -> None:
        self.value = value
        self.samples = samples
        self.total = total
        self.minimum = minimum
        self.maximum = maximum

    def set(self, value: float) -> None:
        self.value = value
        self.samples += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.samples if self.samples else 0.0

    def merge(self, other: "Gauge") -> None:
        self.samples += other.samples
        self.total += other.total
        self.value = other.value  # last writer wins
        for extremum, pick in (("minimum", min), ("maximum", max)):
            mine, theirs = getattr(self, extremum), getattr(other, extremum)
            if theirs is not None:
                setattr(
                    self, extremum,
                    theirs if mine is None else pick(mine, theirs),
                )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "value": self.value, "samples": self.samples,
            "total": self.total, "minimum": self.minimum,
            "maximum": self.maximum,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Gauge":
        return cls(**data)


#: Default occupancy-style buckets (flits); the +inf bucket is implicit.
DEFAULT_BUCKETS: Tuple[float, ...] = (0, 1, 2, 4, 8, 16, 32)


class Histogram:
    """Fixed-bucket histogram: counts of observations <= each bound.

    Buckets are cumulative-style on serialization boundaries but stored
    as per-bucket counts; the final implicit bucket catches everything
    above the last bound.
    """

    __slots__ = ("bounds", "counts", "total", "observations")
    kind = "histogram"

    def __init__(self, bounds: Iterable[float] = DEFAULT_BUCKETS,
                 counts: Optional[List[int]] = None, total: float = 0.0,
                 observations: int = 0) -> None:
        self.bounds: Tuple[float, ...] = tuple(bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError(f"bucket bounds must be increasing: {bounds}")
        self.counts: List[int] = (
            list(counts) if counts is not None
            else [0] * (len(self.bounds) + 1)
        )
        if len(self.counts) != len(self.bounds) + 1:
            raise ValueError("counts must have len(bounds) + 1 entries")
        self.total = total
        self.observations = observations

    def observe(self, value: float, count: int = 1) -> None:
        # counts[i] tallies observations in (bounds[i-1], bounds[i]];
        # the final slot catches everything above the last bound.
        self.counts[bisect_left(self.bounds, value)] += count
        self.total += value * count
        self.observations += count

    @property
    def mean(self) -> float:
        return self.total / self.observations if self.observations else 0.0

    def merge(self, other: "Histogram") -> None:
        if self.bounds != other.bounds:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{self.bounds} vs {other.bounds}"
            )
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.total += other.total
        self.observations += other.observations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bounds": list(self.bounds), "counts": list(self.counts),
            "total": self.total, "observations": self.observations,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Histogram":
        return cls(**data)


_METRIC_TYPES = {cls.kind: cls for cls in (Counter, Gauge, Histogram)}


class MetricRegistry:
    """A flat namespace of metrics, addressed by name + labels."""

    def __init__(self) -> None:
        self._metrics: Dict[MetricKey, Any] = {}

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str,
                  bounds: Iterable[float] = DEFAULT_BUCKETS,
                  **labels) -> Histogram:
        key = _key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = Histogram(bounds)
        elif not isinstance(metric, Histogram):
            raise TypeError(
                f"metric {_key_str(key)} is a {metric.kind}, not a histogram"
            )
        return metric

    def _get_or_create(self, cls, name: str, labels: Dict[str, Any]):
        key = _key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = cls()
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {_key_str(key)} is a {metric.kind}, not a {cls.kind}"
            )
        return metric

    # ------------------------------------------------------------------

    def get(self, name: str, **labels):
        """The metric under this identity, or None."""
        return self._metrics.get(_key(name, labels))

    def value(self, name: str, default: float = 0.0, **labels) -> float:
        """A counter/gauge's current value (``default`` when absent)."""
        metric = self.get(name, **labels)
        return default if metric is None else metric.value

    def items(self) -> List[Tuple[str, Any]]:
        """``(rendered name, metric)`` pairs, sorted by name."""
        return sorted(
            ((_key_str(key), metric) for key, metric in self._metrics.items()),
            key=lambda pair: pair[0],
        )

    def __len__(self) -> int:
        return len(self._metrics)

    def merge(self, other: "MetricRegistry") -> None:
        """Fold another registry's metrics into this one (summing)."""
        for key, theirs in other._metrics.items():
            mine = self._metrics.get(key)
            if mine is None:
                # Deep-enough copy via the serialization round trip.
                self._metrics[key] = type(theirs).from_dict(theirs.to_dict())
            else:
                mine.merge(theirs)

    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            _key_str(key): {"kind": metric.kind, **metric.to_dict()}
            for key, metric in self._metrics.items()
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MetricRegistry":
        registry = cls()
        for name, payload in data.items():
            payload = dict(payload)
            metric_cls = _METRIC_TYPES[payload.pop("kind")]
            registry._metrics[_parse_key(name)] = metric_cls.from_dict(payload)
        return registry
