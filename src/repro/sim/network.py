"""The mesh network: routers, channels, sources and sinks.

``Network`` wires one router per mesh node with pipelined flit channels
(and reverse credit channels) along every mesh link, an injection source
and an ejection sink per node.  ``Network.step()`` advances one clock:

1. deliver arriving flits and credits (and ejections to the sinks);
2. sources generate and inject traffic;
3. every router runs its ST / allocation / RC phases.

Sources own per-VC views of the local input port's credits, injecting at
most one flit per cycle (the injection channel has the same bandwidth as
a network channel).  Sinks model the paper's "immediate ejection".
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, List, Optional, Tuple

from .channel import PipelinedChannel
from .config import SimConfig
from .credit import CreditCounter
from .flit import Flit, Packet
from .routers import BaseRouter, make_router
from .topology import LOCAL, OPPOSITE, make_topology
from .traffic import (
    PacketSource,
    make_destination_pattern,
    rate_from_capacity_fraction,
)


class Source:
    """Per-node injection queue feeding the router's local input port.

    Holds an unbounded packet queue (the paper measures source queueing
    time).  Packets are assigned to idle local VCs; one flit per cycle
    moves into the router, round-robin across VCs with buffer space.
    """

    def __init__(self, node: int, num_vcs: int, buffer_capacity: int) -> None:
        self.node = node
        self.num_vcs = num_vcs
        self.pending: Deque[Packet] = deque()
        self._streams: List[Deque[Flit]] = [deque() for _ in range(num_vcs)]
        self.credits = [CreditCounter(buffer_capacity) for _ in range(num_vcs)]
        self._round_robin = 0
        self.flits_injected = 0

    def enqueue(self, packet: Packet) -> None:
        self.pending.append(packet)

    @property
    def queued_packets(self) -> int:
        return len(self.pending) + sum(1 for s in self._streams if s)

    @property
    def backlog_flits(self) -> int:
        """Flits waiting at this source (queued packets + partial streams)."""
        partial = sum(len(s) for s in self._streams)
        whole = sum(p.length for p in self.pending)
        return partial + whole

    def restore_credit(self, vc: int) -> None:
        self.credits[vc].restore()

    def inject(self, router: BaseRouter, cycle: int) -> Optional[Flit]:
        """Move at most one flit into the router's local port."""
        # Assign waiting packets to idle VC streams.
        for vc in range(self.num_vcs):
            if not self._streams[vc] and self.pending:
                self._streams[vc].extend(self.pending.popleft().make_flits())
        # Inject one flit from a VC with space, round-robin.
        for offset in range(self.num_vcs):
            vc = (self._round_robin + offset) % self.num_vcs
            if self._streams[vc] and self.credits[vc]:
                flit = self._streams[vc].popleft()
                flit.vcid = vc
                self.credits[vc].consume()
                router.accept_flit(LOCAL, flit, cycle)
                self.flits_injected += 1
                self._round_robin = (vc + 1) % self.num_vcs
                if flit.is_head:
                    flit.packet.injection_cycle = cycle
                return flit
        return None


class Sink:
    """Per-node ejection endpoint recording delivered packets."""

    def __init__(self, node: int) -> None:
        self.node = node
        self.flits_ejected = 0
        self.packets_ejected = 0
        self.measured_ejected = 0
        self.delivered: List[Packet] = []

    def accept(self, flit: Flit, cycle: int) -> None:
        if flit.destination != self.node:
            raise AssertionError(
                f"flit for node {flit.destination} ejected at node {self.node}"
            )
        self.flits_ejected += 1
        if flit.is_tail:
            flit.packet.ejection_cycle = cycle
            self.packets_ejected += 1
            if flit.packet.measured:
                self.measured_ejected += 1
            self.delivered.append(flit.packet)


class Network:
    """A k x k mesh of routers under a single synchronous clock."""

    def __init__(self, config: SimConfig) -> None:
        self.config = config
        self.mesh = make_topology(config.topology, config.mesh_radix)
        self.cycle = 0
        self.rng = random.Random(config.seed)

        self.routers: List[BaseRouter] = [
            make_router(node, self.mesh, config) for node in self.mesh.nodes()
        ]
        self.sources = [
            Source(node, config.num_vcs, config.buffers_per_vc)
            for node in self.mesh.nodes()
        ]
        self.sinks = [Sink(node) for node in self.mesh.nodes()]

        pattern = make_destination_pattern(config.traffic_pattern)
        rate = rate_from_capacity_fraction(
            self.mesh, config.injection_fraction, config.packet_length
        )
        if rate > 1.0:
            raise ValueError(
                f"injection fraction {config.injection_fraction} needs "
                f"{rate:.2f} packets/node/cycle, beyond channel bandwidth"
            )
        self.generators = [
            PacketSource(
                node=node,
                mesh=self.mesh,
                rate_packets_per_cycle=rate,
                packet_length=config.packet_length,
                rng=random.Random(self.rng.randrange(2**62)),
                pattern=pattern,
                process=config.injection_process,
                burst_length=config.burst_length,
            )
            for node in self.mesh.nodes()
        ]

        # (channel, destination router, input port) for link delivery.
        self._flit_links: List[Tuple[PipelinedChannel, BaseRouter, int]] = []
        # (channel, handler) pairs for credits; handler takes the vc index.
        self._credit_links: List[Tuple[PipelinedChannel, object, int]] = []
        # (channel, sink) for ejection.
        self._ejection_links: List[Tuple[PipelinedChannel, Sink]] = []
        self._wire()

        #: Packets whose generation was recorded, for conservation checks.
        self.packets_generated = 0
        self.measuring_generation = True

    # ------------------------------------------------------------------

    def _wire(self) -> None:
        flit_delay = self.config.flit_propagation
        credit_delay = self.config.credit_channel_delay
        for node, port, neighbor in self.mesh.links():
            src_router = self.routers[node]
            dst_router = self.routers[neighbor]
            dst_port = OPPOSITE[port]

            flit_channel: PipelinedChannel = PipelinedChannel(flit_delay)
            src_router.connect_output(port, flit_channel)
            self._flit_links.append((flit_channel, dst_router, dst_port))

            credit_channel: PipelinedChannel = PipelinedChannel(credit_delay)
            dst_router.connect_credit(dst_port, credit_channel)
            self._credit_links.append((credit_channel, src_router, port))

        for node in self.mesh.nodes():
            router = self.routers[node]
            # Ejection: local output port -> sink.
            ejection: PipelinedChannel = PipelinedChannel(flit_delay)
            router.connect_output(LOCAL, ejection)
            self._ejection_links.append((ejection, self.sinks[node]))
            # Injection credits: local input port -> source.  One extra
            # cycle compared to network credit links: a source places its
            # flit straight into the local buffer (no switch/link stages),
            # so without it the new flit could land before the granted
            # flit's traversal frees the slot.
            credit_channel = PipelinedChannel(credit_delay + 1)
            router.connect_credit(LOCAL, credit_channel)
            self._credit_links.append((credit_channel, self.sources[node], None))

    # ------------------------------------------------------------------

    def step(self) -> None:
        """Advance the network by one clock cycle."""
        cycle = self.cycle

        for channel, router, port in self._flit_links:
            for flit in channel.deliver(cycle):
                router.accept_flit(port, flit, cycle)

        for channel, endpoint, port in self._credit_links:
            for vc in channel.deliver(cycle):
                if port is None:
                    endpoint.restore_credit(vc)
                else:
                    endpoint.receive_credit(port, vc)

        for channel, sink in self._ejection_links:
            for flit in channel.deliver(cycle):
                sink.accept(flit, cycle)

        for generator, source in zip(self.generators, self.sources):
            packet = generator.maybe_generate(cycle)
            if packet is not None:
                packet.measured = self.measuring_generation
                self.packets_generated += 1
                source.enqueue(packet)
            source.inject(self.routers[source.node], cycle)

        for router in self.routers:
            router.cycle(cycle)

        self.cycle += 1

    def run(self, cycles: int) -> None:
        for _ in range(cycles):
            self.step()

    # ------------------------------------------------------------------
    # Introspection / invariants.
    # ------------------------------------------------------------------

    def flits_in_flight(self) -> int:
        """Flits inside routers or on channels (not in sources/sinks)."""
        buffered = sum(r.buffered_flits() for r in self.routers)
        on_links = sum(ch.occupancy for ch, _, _ in self._flit_links)
        ejecting = sum(ch.occupancy for ch, _ in self._ejection_links)
        return buffered + on_links + ejecting

    def total_flits_injected(self) -> int:
        return sum(s.flits_injected for s in self.sources)

    def total_flits_ejected(self) -> int:
        return sum(s.flits_ejected for s in self.sinks)

    def check_conservation(self) -> None:
        """No flit is ever created or destroyed inside the network."""
        injected = self.total_flits_injected()
        ejected = self.total_flits_ejected()
        in_flight = self.flits_in_flight()
        if injected != ejected + in_flight:
            raise AssertionError(
                f"flit conservation violated: injected {injected} != "
                f"ejected {ejected} + in flight {in_flight}"
            )

    def check_credit_invariants(self) -> None:
        for router in self.routers:
            router.check_credit_invariant()

    def drained(self) -> bool:
        """True when no traffic remains anywhere in the system."""
        if self.flits_in_flight():
            return False
        return all(s.backlog_flits == 0 for s in self.sources)
