"""The mesh network: routers, channels, sources and sinks.

``Network`` wires one router per mesh node with pipelined flit channels
(and reverse credit channels) along every mesh link, an injection source
and an ejection sink per node.  ``Network.step()`` advances one clock:

1. deliver arriving flits and credits (and ejections to the sinks);
2. sources generate and inject traffic;
3. every router runs its ST / allocation / RC phases.

Sources own per-VC views of the local input port's credits, injecting at
most one flit per cycle (the injection channel has the same bandwidth as
a network channel).  Sinks model the paper's "immediate ejection".

Two steppers implement the clock, selected by ``SimConfig.stepper``:

``"fast"`` (default)
    Event-driven hot loop.  Channel arrivals are scheduled on a timing
    wheel at ``send()`` time, so a step drains exactly the channels with
    traffic arriving this cycle instead of polling every channel.
    Routers track their own activity (``BaseRouter.active``) and the
    step skips the phase pipeline of provably idle routers; constant
    rate generators fast-forward between firing cycles instead of
    accumulating cycle by cycle.

``"reference"``
    The original full-scan stepper, kept as the oracle baseline.

Both steppers are cycle-for-cycle bit-identical for a fixed seed: the
per-cycle delivery set is the same (the wheel only reorders same-cycle
deliveries, which commute -- each touches a distinct buffer, credit
counter or sink), idle routers' phases are provable no-ops (see
``BaseRouter.is_idle`` and ``_can_sleep``), and the generator
fast-forward performs the exact floating-point accumulator additions
per-cycle polling would (``PacketSource.offer_horizon``).  The
``fast_vs_reference`` oracle and the property suite enforce this.
"""

from __future__ import annotations

import itertools
import random
from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from .channel import PipelinedChannel
from .config import SimConfig
from .credit import CreditCounter
from .flit import Flit, Packet
from .routers import BaseRouter, make_router
from .topology import LOCAL, OPPOSITE, make_topology
from .traffic import (
    PacketSource,
    make_destination_pattern,
    rate_from_capacity_fraction,
)

class _EventWheel:
    """Power-of-two timing wheel scheduling channel arrivals.

    ``PipelinedChannel.send`` registers its bound ``(in_flight, handler)``
    entry in the bucket for the arrival cycle; ``drain(cycle)`` visits
    only that bucket and delivers every payload whose arrival is due.

    The wheel has ``>= max_delay + 2`` slots, so an arrival offset
    (``delay + 1``, in ``[1, max_delay + 1]``) can never alias the slot
    currently being drained: every scheduled entry survives until its
    own cycle.  Entries hold the channel's ``_in_flight`` deque rather
    than individual payloads, so delivery order *within* a channel is
    the channel's FIFO order, and a duplicate entry (or one whose
    payloads were already consumed via ``deliver()``) is a harmless
    no-op.
    """

    __slots__ = ("_buckets", "_mask")

    def __init__(self, max_delay: int) -> None:
        size = 1
        while size < max_delay + 2:
            size <<= 1
        self._mask = size - 1
        self._buckets: List[list] = [[] for _ in range(size)]

    def schedule(self, arrival: int, entry: tuple) -> None:
        self._buckets[arrival & self._mask].append(entry)

    def drain(self, cycle: int) -> None:
        bucket = self._buckets[cycle & self._mask]
        if not bucket:
            return
        for in_flight, handler in bucket:
            while in_flight and in_flight[0][0] <= cycle:
                handler(in_flight.popleft()[1], cycle)
        bucket.clear()


# Handler factories for the event wheel.  Each handler resolves the
# endpoint method *at call time* (attribute lookup inside the closure),
# so instance-level wrappers (tracers, in-order probes around
# ``Sink.accept``) and class-level monkeypatches keep intercepting
# deliveries exactly as they do under the reference stepper.

def _flit_handler(router: BaseRouter, port: int) -> Callable[[Flit, int], None]:
    def handle(flit: Flit, cycle: int) -> None:
        router.accept_flit(port, flit, cycle)
    return handle


def _credit_handler(router: BaseRouter, port: int) -> Callable[[int, int], None]:
    def handle(vc: int, cycle: int) -> None:
        router.receive_credit(port, vc)
    return handle


def _source_credit_handler(source: "Source") -> Callable[[int, int], None]:
    def handle(vc: int, cycle: int) -> None:
        source.restore_credit(vc)
    return handle


def _ejection_handler(sink: "Sink") -> Callable[[Flit, int], None]:
    def handle(flit: Flit, cycle: int) -> None:
        sink.accept(flit, cycle)
    return handle


class Source:
    """Per-node injection queue feeding the router's local input port.

    Holds an unbounded packet queue (the paper measures source queueing
    time).  Packets are assigned to idle local VCs; one flit per cycle
    moves into the router, round-robin across VCs with buffer space.
    """

    def __init__(self, node: int, num_vcs: int, buffer_capacity: int) -> None:
        self.node = node
        self.num_vcs = num_vcs
        self.pending: Deque[Packet] = deque()
        self._streams: List[Deque[Flit]] = [deque() for _ in range(num_vcs)]
        self.credits = [CreditCounter(buffer_capacity) for _ in range(num_vcs)]
        self._round_robin = 0
        self.flits_injected = 0
        #: Flits waiting here, maintained incrementally so the stepper's
        #: "anything to inject?" test is O(1).
        self._backlog = 0
        #: Owning network (if any) whose aggregate counters we maintain.
        self._network: Optional["Network"] = None

    def enqueue(self, packet: Packet) -> None:
        self.pending.append(packet)
        self._backlog += packet.length

    @property
    def queued_packets(self) -> int:
        return len(self.pending) + sum(1 for s in self._streams if s)

    @property
    def backlog_flits(self) -> int:
        """Flits waiting at this source (queued packets + partial streams)."""
        return self._backlog

    def restore_credit(self, vc: int) -> None:
        self.credits[vc].restore()

    def inject(self, router: BaseRouter, cycle: int) -> Optional[Flit]:
        """Move at most one flit into the router's local port."""
        # Assign waiting packets to idle VC streams.
        pending = self.pending
        for vc in range(self.num_vcs):
            if not self._streams[vc] and pending:
                self._streams[vc].extend(pending.popleft().make_flits())
        # Inject one flit from a VC with space, round-robin.
        for offset in range(self.num_vcs):
            vc = (self._round_robin + offset) % self.num_vcs
            if self._streams[vc] and self.credits[vc]:
                flit = self._streams[vc].popleft()
                flit.vcid = vc
                self.credits[vc].consume()
                router.accept_flit(LOCAL, flit, cycle)
                self.flits_injected += 1
                self._backlog -= 1
                network = self._network
                if network is not None:
                    network._flits_injected_total += 1
                self._round_robin = (vc + 1) % self.num_vcs
                if flit.is_head:
                    flit.packet.injection_cycle = cycle
                return flit
        return None


class Sink:
    """Per-node ejection endpoint recording delivered packets.

    ``delivered_measured`` keeps the measured subsequence of
    ``delivered`` so the simulator's sample collection doesn't rescan
    (and re-filter) every delivered packet after the run.

    Deliberately *not* ``__slots__``-ed: tracers and in-order probes
    wrap ``accept`` as an instance attribute.
    """

    def __init__(self, node: int) -> None:
        self.node = node
        self.flits_ejected = 0
        self.packets_ejected = 0
        self.measured_ejected = 0
        self.delivered: List[Packet] = []
        self.delivered_measured: List[Packet] = []
        #: Owning network (if any) whose aggregate counters we maintain.
        self._network: Optional["Network"] = None

    def accept(self, flit: Flit, cycle: int) -> None:
        if flit.destination != self.node:
            raise AssertionError(
                f"flit for node {flit.destination} ejected at node {self.node}"
            )
        self.flits_ejected += 1
        network = self._network
        if network is not None:
            network._flits_ejected_total += 1
        if flit.is_tail:
            packet = flit.packet
            packet.ejection_cycle = cycle
            self.packets_ejected += 1
            if packet.measured:
                self.measured_ejected += 1
                self.delivered_measured.append(packet)
                if network is not None:
                    network._measured_ejected_total += 1
            self.delivered.append(packet)


class Network:
    """A k x k mesh of routers under a single synchronous clock."""

    def __init__(self, config: SimConfig) -> None:
        self.config = config
        self.mesh = make_topology(config.topology, config.mesh_radix)
        self.cycle = 0
        self.rng = random.Random(config.seed)

        self.routers: List[BaseRouter] = [
            make_router(node, self.mesh, config) for node in self.mesh.nodes()
        ]
        self.sources = [
            Source(node, config.num_vcs, config.buffers_per_vc)
            for node in self.mesh.nodes()
        ]
        self.sinks = [Sink(node) for node in self.mesh.nodes()]

        # Aggregate flit counters, maintained by sources/sinks as flits
        # move, so draining/sampling tests are O(1) per cycle.
        self._flits_injected_total = 0
        self._flits_ejected_total = 0
        self._measured_ejected_total = 0
        for source in self.sources:
            source._network = self
        for sink in self.sinks:
            sink._network = self

        pattern = make_destination_pattern(config.traffic_pattern)
        rate = rate_from_capacity_fraction(
            self.mesh, config.injection_fraction, config.packet_length
        )
        if rate > 1.0:
            raise ValueError(
                f"injection fraction {config.injection_fraction} needs "
                f"{rate:.2f} packets/node/cycle, beyond channel bandwidth"
            )
        # One id sequence per network, shared by all sources, so packet
        # ids are a pure function of the run regardless of what else ran
        # in the process (o1turn's hash split reads the id).
        self._packet_ids = itertools.count()
        self.generators = [
            PacketSource(
                node=node,
                mesh=self.mesh,
                rate_packets_per_cycle=rate,
                packet_length=config.packet_length,
                rng=random.Random(self.rng.randrange(2**62)),
                pattern=pattern,
                process=config.injection_process,
                burst_length=config.burst_length,
                ids=self._packet_ids,
            )
            for node in self.mesh.nodes()
        ]

        # Constant-rate generators never touch the RNG between firing
        # cycles, so the fast stepper jumps straight to each generator's
        # next offer cycle; stochastic processes draw every cycle and
        # must be polled.  ``offer_horizon()`` performs the exact same
        # accumulator additions per-cycle polling would, keeping the
        # fast-forward bit-identical.
        self._poll_generators = config.injection_process != "constant"
        self._next_offer: List[int] = []
        if config.stepper == "fast":
            # Reference-stepper networks must not touch the generators
            # here: offer_horizon() advances the accumulators.
            for generator in self.generators:
                if (
                    self._poll_generators
                    or generator.rate_packets_per_cycle <= 0.0
                ):
                    # Zero-rate generators stay polled: maybe_generate
                    # is a cheap early-return for them, and tests flip
                    # the rate mid-run in both directions.
                    self._next_offer.append(0)
                else:
                    self._next_offer.append(generator.offer_horizon() - 1)

        # (channel, destination router, input port) for link delivery.
        self._flit_links: List[Tuple[PipelinedChannel, BaseRouter, int]] = []
        # (channel, handler) pairs for credits; handler takes the vc index.
        self._credit_links: List[Tuple[PipelinedChannel, object, int]] = []
        # (channel, sink) for ejection.
        self._ejection_links: List[Tuple[PipelinedChannel, Sink]] = []
        self._wheel: Optional[_EventWheel] = None
        self._wire()

        #: Packets whose generation was recorded, for conservation checks.
        self.packets_generated = 0
        self.measuring_generation = True

        #: Per-instance step dispatch, bound once: the hot loop pays no
        #: per-cycle branch for the stepper choice.
        self.step = (
            self._step_fast if config.stepper == "fast"
            else self._step_reference
        )

        #: Why the routers run the generic ``cycle`` path instead of a
        #: compiled step function; None while specialization is live.
        self.generic_step_reason: Optional[str] = None
        #: Routers currently bound to a compiled step closure (the rest
        #: run the generic path); surfaced on ``RunCounters``.
        self.routers_specialized: int = 0
        if config.stepper == "fast":
            self._specialize_routers()
        else:
            self.generic_step_reason = "reference-stepper"

    def _specialize_routers(self) -> None:
        """Bind a config-specialized step function to each router.

        Runs once at wiring time (channels must already be connected).
        Routers whose config or instance state is outside the supported
        envelope keep ``_step_fn = None`` and run the generic path.
        """
        from .routers.specialized import compile_step, plan_for

        if plan_for(self.config) is None:
            self.generic_step_reason = "unsupported-config"
            return
        count = 0
        for router in self.routers:
            step_fn = compile_step(router)
            router._step_fn = step_fn
            if step_fn is not None:
                count += 1
        self.routers_specialized = count

    def force_generic_step(self, reason: str) -> None:
        """Drop every compiled step function; the generic path runs.

        Called by ``ValidationSuite.attach``, ``TelemetrySession.attach``
        and ``Tracer.attach``: their probes/collectors wrap the generic
        methods (instance-level ``_traverse`` wrappers, allocator
        proxies, ``Sink.accept`` wraps), which the compiled closures
        would bypass.
        """
        self.generic_step_reason = reason
        self.routers_specialized = 0
        for router in self.routers:
            router._step_fn = None

    # ------------------------------------------------------------------

    def _wire(self) -> None:
        flit_delay = self.config.flit_propagation
        credit_delay = self.config.credit_channel_delay
        for node, port, neighbor in self.mesh.links():
            src_router = self.routers[node]
            dst_router = self.routers[neighbor]
            dst_port = OPPOSITE[port]

            flit_channel: PipelinedChannel = PipelinedChannel(flit_delay)
            src_router.connect_output(port, flit_channel)
            self._flit_links.append((flit_channel, dst_router, dst_port))

            credit_channel: PipelinedChannel = PipelinedChannel(credit_delay)
            dst_router.connect_credit(dst_port, credit_channel)
            self._credit_links.append((credit_channel, src_router, port))

        for node in self.mesh.nodes():
            router = self.routers[node]
            # Ejection: local output port -> sink.
            ejection: PipelinedChannel = PipelinedChannel(flit_delay)
            router.connect_output(LOCAL, ejection)
            self._ejection_links.append((ejection, self.sinks[node]))
            # Injection credits: local input port -> source.  One extra
            # cycle compared to network credit links: a source places its
            # flit straight into the local buffer (no switch/link stages),
            # so without it the new flit could land before the granted
            # flit's traversal frees the slot.
            credit_channel = PipelinedChannel(credit_delay + 1)
            router.connect_credit(LOCAL, credit_channel)
            self._credit_links.append((credit_channel, self.sources[node], None))

        if self.config.stepper != "fast":
            return
        # Bind every channel to the arrival wheel.  Handlers wake the
        # receiving router through accept_flit/receive_credit, so a
        # sleeping router is reactivated by exactly the events that can
        # give it work.
        max_delay = max(flit_delay, credit_delay + 1)
        self._wheel = _EventWheel(max_delay)
        for flit_channel, dst_router, dst_port in self._flit_links:
            flit_channel.bind_wheel(
                self._wheel, _flit_handler(dst_router, dst_port)
            )
        for credit_channel, endpoint, port in self._credit_links:
            if port is None:
                handler = _source_credit_handler(endpoint)
            else:
                handler = _credit_handler(endpoint, port)
            credit_channel.bind_wheel(self._wheel, handler)
        for ejection, sink in self._ejection_links:
            ejection.bind_wheel(self._wheel, _ejection_handler(sink))

    # ------------------------------------------------------------------

    def _step_fast(self) -> None:
        """Advance one clock: event-driven deliveries + active routers."""
        cycle = self.cycle

        # Phase 1: deliveries.  Only the wheel bucket for this cycle is
        # visited; same-cycle deliveries commute (disjoint endpoints and
        # additive stats), so bucket order vs. link-list order is
        # unobservable.
        self._wheel.drain(cycle)

        # Phase 2: generation and injection.
        measuring = self.measuring_generation
        routers = self.routers
        if self._poll_generators:
            for generator, source in zip(self.generators, self.sources):
                packet = generator.maybe_generate(cycle)
                if packet is not None:
                    packet.measured = measuring
                    self.packets_generated += 1
                    source.enqueue(packet)
                if source._backlog:
                    source.inject(routers[source.node], cycle)
        else:
            next_offer = self._next_offer
            node = 0
            for generator, source in zip(self.generators, self.sources):
                if next_offer[node] <= cycle:
                    packet = generator.maybe_generate(cycle)
                    if packet is not None:
                        # The common case: a constant-rate source fires
                        # at its horizon cycle.
                        packet.measured = measuring
                        self.packets_generated += 1
                        source.enqueue(packet)
                        next_offer[node] = cycle + generator.offer_horizon()
                    elif generator.rate_packets_per_cycle <= 0.0:
                        # Zero rate (possibly zeroed mid-run): poll again
                        # next cycle; the early-return in maybe_generate
                        # keeps the accumulator untouched, exactly as
                        # per-cycle polling would.
                        next_offer[node] = cycle + 1
                    else:
                        next_offer[node] = cycle + generator.offer_horizon()
                if source._backlog:
                    source.inject(routers[source.node], cycle)
                node += 1

        # Phase 3: router pipelines, skipping provably idle routers.
        # A router sleeps only when idle *and* its allocators are pure on
        # empty inputs (``_can_sleep``); every wake path funnels through
        # accept_flit/receive_credit.
        for router in routers:
            if router.active:
                step_fn = router._step_fn
                if step_fn is not None:
                    step_fn(cycle)
                else:
                    router.cycle(cycle)
                if router._can_sleep and router.is_idle():
                    router.active = False

        self.cycle = cycle + 1

    def _step_reference(self) -> None:
        """Advance one clock with the original full-scan stepper."""
        cycle = self.cycle

        for channel, router, port in self._flit_links:
            for flit in channel.deliver(cycle):
                router.accept_flit(port, flit, cycle)

        for channel, endpoint, port in self._credit_links:
            for vc in channel.deliver(cycle):
                if port is None:
                    endpoint.restore_credit(vc)
                else:
                    endpoint.receive_credit(port, vc)

        for channel, sink in self._ejection_links:
            for flit in channel.deliver(cycle):
                sink.accept(flit, cycle)

        for generator, source in zip(self.generators, self.sources):
            packet = generator.maybe_generate(cycle)
            if packet is not None:
                packet.measured = self.measuring_generation
                self.packets_generated += 1
                source.enqueue(packet)
            source.inject(self.routers[source.node], cycle)

        for router in self.routers:
            router.cycle(cycle)

        self.cycle += 1

    def run(self, cycles: int) -> None:
        step = self.step
        for _ in range(cycles):
            step()

    # ------------------------------------------------------------------
    # Introspection / invariants.
    # ------------------------------------------------------------------

    def flits_in_flight(self) -> int:
        """Flits inside routers or on channels (not in sources/sinks).

        Deliberately a physical scan rather than an ``injected -
        ejected`` identity: the conservation check relies on this
        counting what is *actually there*, so a vanished flit is
        detected instead of defined away.
        """
        buffered = sum(r.buffered_flits() for r in self.routers)
        on_links = sum(ch.occupancy for ch, _, _ in self._flit_links)
        ejecting = sum(ch.occupancy for ch, _ in self._ejection_links)
        return buffered + on_links + ejecting

    def total_flits_injected(self) -> int:
        return self._flits_injected_total

    def total_flits_ejected(self) -> int:
        return self._flits_ejected_total

    def total_measured_ejected(self) -> int:
        """Measured packets fully delivered (tail ejected), O(1)."""
        return self._measured_ejected_total

    def check_conservation(self) -> None:
        """No flit is ever created or destroyed inside the network."""
        injected = self.total_flits_injected()
        ejected = self.total_flits_ejected()
        in_flight = self.flits_in_flight()
        if injected != ejected + in_flight:
            raise AssertionError(
                f"flit conservation violated: injected {injected} != "
                f"ejected {ejected} + in flight {in_flight}"
            )

    def check_credit_invariants(self) -> None:
        for router in self.routers:
            router.check_credit_invariant()

    def drained(self) -> bool:
        """True when no traffic remains anywhere in the system."""
        if self._flits_injected_total != self._flits_ejected_total:
            return False
        return all(not s._backlog for s in self.sources)
