"""Input-queue flit buffers.

Each input virtual channel owns one fixed-capacity FIFO.  Credit-based
flow control guarantees a sender never overruns the FIFO; overflow
therefore raises, surfacing flow-control bugs instead of hiding them.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from .flit import Flit


class FlitBuffer:
    """Fixed-capacity FIFO of flits.

    The underlying deque (``_queue``) is deliberately exposed to the
    struct-of-arrays hot path: the specialized router steppers collect
    every input VC's queue into one flat list at wiring time and operate
    on the deques directly, skipping the method layer.  The wrapper
    stays the only *mutation* API outside those steppers so the
    overflow check keeps surfacing flow-control bugs.
    """

    __slots__ = ("capacity", "_queue")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"buffer capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._queue: Deque[Flit] = deque()

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    @property
    def occupancy(self) -> int:
        """Flits currently queued (``len``, named for invariant checks)."""
        return len(self._queue)

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self._queue)

    @property
    def is_full(self) -> bool:
        return len(self._queue) >= self.capacity

    def push(self, flit: Flit) -> None:
        """Append a flit; raises on overflow (a flow-control violation)."""
        if self.is_full:
            raise OverflowError(
                f"buffer overflow: capacity {self.capacity} exceeded by {flit!r} "
                "(credit-based flow control should make this impossible)"
            )
        self._queue.append(flit)

    def front(self) -> Optional[Flit]:
        """The flit at the head of the queue, or None if empty."""
        return self._queue[0] if self._queue else None

    def pop(self) -> Flit:
        """Remove and return the head flit; raises on empty buffer."""
        if not self._queue:
            raise IndexError("pop from empty flit buffer")
        return self._queue.popleft()

    def __iter__(self):
        return iter(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FlitBuffer({len(self._queue)}/{self.capacity})"
