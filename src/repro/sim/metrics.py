"""Latency and throughput measurement.

Latency follows the paper exactly: "from the time when the first flit of
the packet is created, to the time when its last flit is ejected at the
destination node, including source queuing time and assuming immediate
ejection" (Section 5).  Throughput is the accepted flit rate per node
per cycle, reported as a fraction of network capacity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..telemetry.summary import TelemetrySummary, merge_summaries
from .flit import Packet
from .instrumentation import RunCounters


@dataclass
class LatencyStats:
    """Summary statistics over a set of delivered packets."""

    count: int
    mean: float
    minimum: int
    maximum: int
    p50: float
    p95: float
    p99: float

    @classmethod
    def from_packets(cls, packets: Sequence[Packet]) -> "LatencyStats":
        latencies = sorted(p.latency for p in packets)
        if not latencies:
            raise ValueError("no delivered packets to summarise")
        return cls(
            count=len(latencies),
            mean=sum(latencies) / len(latencies),
            minimum=latencies[0],
            maximum=latencies[-1],
            p50=_percentile(latencies, 0.50),
            p95=_percentile(latencies, 0.95),
            p99=_percentile(latencies, 0.99),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count, "mean": self.mean,
            "minimum": self.minimum, "maximum": self.maximum,
            "p50": self.p50, "p95": self.p95, "p99": self.p99,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LatencyStats":
        return cls(**data)


def _percentile(sorted_values: List[int], q: float) -> float:
    """Linear-interpolation percentile of pre-sorted values."""
    if not sorted_values:
        raise ValueError("empty sample")
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    position = q * (len(sorted_values) - 1)
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return float(sorted_values[low])
    weight = position - low
    return sorted_values[low] * (1 - weight) + sorted_values[high] * weight


@dataclass
class RunResult:
    """Outcome of one simulation run at a fixed injection rate."""

    injection_fraction: float          # offered load (fraction of capacity)
    latency: Optional[LatencyStats]    # None if the sample never drained
    accepted_fraction: float           # delivered load (fraction of capacity)
    saturated: bool                    # sample failed to drain in time
    cycles_simulated: int
    sample_packets: int
    spec_grants: int = 0
    spec_wasted: int = 0
    #: Full engine instrumentation (None for results predating it).
    counters: Optional[RunCounters] = None
    #: Checked-mode validation summary (None for unchecked runs).
    #: Excluded from equality: a checked and an unchecked run of the
    #: same point produce the same measurements.
    validation: Optional[Dict[str, Any]] = field(default=None, compare=False)
    #: Telemetry summary (None for unobserved runs).  Excluded from
    #: equality for the same reason: observation never changes what a
    #: run measured (the ``telemetry_on_vs_off`` oracle enforces it).
    telemetry: Optional[TelemetrySummary] = field(default=None, compare=False)
    #: Where this result came from: "simulated" (the engine just ran
    #: it) or "cached" (replayed from the content-addressed store).
    #: Provenance, not measurement -- excluded from equality so the
    #: cached_vs_uncached differential oracle still holds, and
    #: defaulted so cache entries written before the field existed
    #: deserialize cleanly (their source reads as None/unknown).
    source: Optional[str] = field(default=None, compare=False)

    @property
    def average_latency(self) -> float:
        """Mean latency; infinite for saturated (undrained) runs."""
        if self.latency is None:
            return math.inf
        return self.latency.mean

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation (exact round trip via from_dict)."""
        return {
            "injection_fraction": self.injection_fraction,
            "latency": self.latency.to_dict() if self.latency else None,
            "accepted_fraction": self.accepted_fraction,
            "saturated": self.saturated,
            "cycles_simulated": self.cycles_simulated,
            "sample_packets": self.sample_packets,
            "spec_grants": self.spec_grants,
            "spec_wasted": self.spec_wasted,
            "counters": self.counters.to_dict() if self.counters else None,
            "validation": self.validation,
            "telemetry": self.telemetry.to_dict() if self.telemetry else None,
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunResult":
        data = dict(data)
        if data.get("latency") is not None:
            data["latency"] = LatencyStats.from_dict(data["latency"])
        if data.get("counters") is not None:
            data["counters"] = RunCounters.from_dict(data["counters"])
        if data.get("telemetry") is not None:
            data["telemetry"] = TelemetrySummary.from_dict(data["telemetry"])
        return cls(**data)

    def describe(self) -> str:
        latency = (
            f"{self.average_latency:7.1f}" if self.latency is not None
            else "    inf"
        )
        return (
            f"load {self.injection_fraction:4.0%}  latency {latency} cycles  "
            f"accepted {self.accepted_fraction:5.1%}"
            f"{'  [saturated]' if self.saturated else ''}"
        )


@dataclass
class AggregateResult:
    """Several same-configuration runs (different seeds), aggregated.

    Seed-to-seed variation quantifies the measurement noise the paper's
    single 100k-packet runs average away; with reduced sample sizes the
    95% confidence interval says how much to trust a comparison.
    """

    injection_fraction: float
    runs: List[RunResult]

    def __post_init__(self) -> None:
        if not self.runs:
            raise ValueError("aggregate needs at least one run")
        if any(
            r.injection_fraction != self.injection_fraction for r in self.runs
        ):
            raise ValueError("aggregated runs must share the injection rate")

    @property
    def any_saturated(self) -> bool:
        return any(r.saturated for r in self.runs)

    @property
    def mean_latency(self) -> float:
        if self.any_saturated:
            return math.inf
        return sum(r.average_latency for r in self.runs) / len(self.runs)

    @property
    def latency_std(self) -> float:
        if self.any_saturated or len(self.runs) < 2:
            return 0.0
        mean = self.mean_latency
        variance = sum(
            (r.average_latency - mean) ** 2 for r in self.runs
        ) / (len(self.runs) - 1)
        return math.sqrt(variance)

    @property
    def latency_ci95(self) -> float:
        """Half-width of the normal-approximation 95% CI of the mean."""
        if len(self.runs) < 2:
            return 0.0
        return 1.96 * self.latency_std / math.sqrt(len(self.runs))

    @property
    def mean_accepted(self) -> float:
        return sum(r.accepted_fraction for r in self.runs) / len(self.runs)

    def describe(self) -> str:
        if self.any_saturated:
            return (
                f"load {self.injection_fraction:4.0%}  latency     inf  "
                f"[saturated in {sum(r.saturated for r in self.runs)}"
                f"/{len(self.runs)} seeds]"
            )
        return (
            f"load {self.injection_fraction:4.0%}  latency "
            f"{self.mean_latency:7.1f} +- {self.latency_ci95:4.1f} cycles  "
            f"accepted {self.mean_accepted:5.1%}  ({len(self.runs)} seeds)"
        )


@dataclass
class SweepResult:
    """A latency-throughput curve: one RunResult per injection rate."""

    label: str
    points: List[RunResult] = field(default_factory=list)

    def zero_load_latency(self) -> float:
        """Latency of the lowest-load point (the curve's left end)."""
        if not self.points:
            raise ValueError("empty sweep")
        lowest = min(self.points, key=lambda p: p.injection_fraction)
        return lowest.average_latency

    def saturation_fraction(self, latency_limit: float) -> float:
        """Highest offered load with average latency <= ``latency_limit``.

        This is how the paper's saturation percentages are read off the
        latency-throughput curves: the load where the curve turns
        vertical.  Returns 0.0 if even the lightest load exceeds the
        limit.
        """
        ordered = sorted(self.points, key=lambda p: p.injection_fraction)
        saturation = 0.0
        for point in ordered:
            if point.saturated or point.average_latency > latency_limit:
                break
            saturation = point.injection_fraction
        return saturation

    def merged_telemetry(self) -> Optional[TelemetrySummary]:
        """Every point's telemetry folded into one summary.

        ``None`` when no point carried telemetry.  The merge sums
        counters and histograms across points, so derived rates
        (speculation win rate, channel utilization) become
        whole-sweep ratios; per-point window timelines are dropped.
        """
        return merge_summaries(p.telemetry for p in self.points)

    def describe(self) -> str:
        lines = [f"{self.label}:"]
        for point in sorted(self.points, key=lambda p: p.injection_fraction):
            lines.append("  " + point.describe())
        return "\n".join(lines)
