"""Separable two-stage allocators (Section 3.2, Figures 7 and 8).

An allocator matches *requestors* (input VCs) to *resources* (output
ports for switch allocation; output VCs for VC allocation) such that
each requestor wins at most one resource and each resource is granted to
at most one requestor.  A *separable* allocator does this in two arbiter
stages:

1. per requestor *group* (an input port's VCs), a ``v:1`` arbiter picks
   one candidate request;
2. per resource, an arbiter picks among the surviving candidates.

Separability trades a little matching efficiency for a fast, simple
circuit -- we reproduce that behaviour exactly (including the lost
matches), since it affects saturation throughput.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Sequence, Tuple

from .arbiters import Arbiter, make_arbiter


class Request(NamedTuple):
    """One allocation request.

    ``group``/``member`` identify the requestor (e.g. input port /
    input VC); ``resource`` is the requested resource index.

    A named tuple rather than a frozen dataclass: routers build
    thousands of these per simulated cycle, and tuple construction is
    several times cheaper than ``object.__setattr__``-based init.
    """

    group: int
    member: int
    resource: int


class Grant(NamedTuple):
    """A granted request."""

    group: int
    member: int
    resource: int


def grant_conflicts(*grant_sets: Sequence[Grant]) -> List[str]:
    """Structural conflicts across one or more grant sets, as messages.

    A legal allocation (even combined across a speculative router's two
    parallel allocators) grants each input group at most once and each
    resource at most once.  Returns one message per conflict; an empty
    list means the combined grants form a valid matching.  Used by the
    allocator property tests and available to invariant probes.
    """
    conflicts: List[str] = []
    seen_groups: Dict[int, Grant] = {}
    seen_resources: Dict[int, Grant] = {}
    for grants in grant_sets:
        for grant in grants:
            if grant.group in seen_groups:
                conflicts.append(
                    f"input group {grant.group} granted twice: "
                    f"{seen_groups[grant.group]} and {grant}"
                )
            else:
                seen_groups[grant.group] = grant
            if grant.resource in seen_resources:
                conflicts.append(
                    f"resource {grant.resource} granted twice: "
                    f"{seen_resources[grant.resource]} and {grant}"
                )
            else:
                seen_resources[grant.resource] = grant
    return conflicts


class SeparableAllocator:
    """Input-first separable allocator with persistent arbiter state.

    Parameters
    ----------
    num_groups:
        Number of requestor groups (input ports).
    members_per_group:
        Requestors per group (VCs per input port).
    num_resources:
        Number of resources (output ports, or output VCs).
    arbiter_kind:
        ``"matrix"`` (paper default) or ``"round_robin"``.
    """

    def __init__(
        self,
        num_groups: int,
        members_per_group: int,
        num_resources: int,
        arbiter_kind: str = "matrix",
    ) -> None:
        if num_groups < 1 or members_per_group < 1 or num_resources < 1:
            raise ValueError(
                "allocator dimensions must be positive: "
                f"{num_groups} groups x {members_per_group} members, "
                f"{num_resources} resources"
            )
        self.num_groups = num_groups
        self.members_per_group = members_per_group
        self.num_resources = num_resources
        self._stage1: List[Arbiter] = [
            make_arbiter(arbiter_kind, members_per_group) for _ in range(num_groups)
        ]
        self._stage2: List[Arbiter] = [
            make_arbiter(arbiter_kind, num_groups) for _ in range(num_resources)
        ]
        # Matrix arbiters expose their flat-int priority state, letting
        # allocate_grouped inline the single-candidate rotation (the
        # dominant case under load) instead of paying an arbitrate call.
        self._matrix = arbiter_kind == "matrix"

    def allocate(
        self, requests: Sequence[Request], busy_resources: Sequence[int] = ()
    ) -> List[Grant]:
        """Run one allocation cycle.

        ``busy_resources`` are masked out entirely (e.g. output ports
        already consumed by higher-priority non-speculative grants, or
        ports held by a wormhole packet).
        """
        self._validate(requests)
        if len(requests) == 1:
            # Fast path for the common light-load case.  The general
            # path would run exactly these two arbitrations (each a
            # single-candidate call that still rotates priority state),
            # so the state updates are identical.
            request = requests[0]
            if request.resource in busy_resources:
                return []
            self._stage1[request.group].arbitrate((request.member,))
            self._stage2[request.resource].arbitrate((request.group,))
            return [Grant(request.group, request.member, request.resource)]
        busy = set(busy_resources)

        # Stage 1: per group, pick one surviving request.
        survivors: Dict[int, Request] = {}
        by_group: Dict[int, List[Request]] = {}
        for request in requests:
            if request.resource in busy:
                continue
            # repro: hot-ok[per-cycle request grouping in the reference allocator; bounded by requests]
            by_group.setdefault(request.group, []).append(request)
        for group, group_requests in by_group.items():
            # repro: hot-ok[bounded same-cycle scratch in the reference allocator]
            members = [r.member for r in group_requests]
            winner_member = self._stage1[group].arbitrate(members)
            # A member may post several requests (general routing
            # functions); the member's own choice among its resources is
            # resolved by the first matching request (callers submit one
            # resource per member for the flows modelled here).
            for request in group_requests:
                if request.member == winner_member:
                    survivors[group] = request
                    break

        # Stage 2: per resource, pick one group among the survivors.
        by_resource: Dict[int, List[Request]] = {}
        for request in survivors.values():
            # repro: hot-ok[per-cycle request grouping in the reference allocator; bounded by requests]
            by_resource.setdefault(request.resource, []).append(request)
        grants: List[Grant] = []
        for resource, resource_requests in by_resource.items():
            # repro: hot-ok[bounded same-cycle scratch in the reference allocator]
            groups = [r.group for r in resource_requests]
            winner_group = self._stage2[resource].arbitrate(groups)
            for request in resource_requests:
                if request.group == winner_group:
                    grants.append(Grant(request.group, request.member, request.resource))
                    break
        return grants

    def allocate_grouped(
        self,
        groups: Sequence[int],
        members_lists: Sequence[Sequence[int]],
        resources_lists: Sequence[Sequence[int]],
        busy_resources: Sequence[int] = (),
    ) -> List[Grant]:
        """Batched :meth:`allocate` for pre-grouped requests.

        ``groups`` lists the group ids in first-appearance (request)
        order; ``members_lists[i]`` and ``resources_lists[i]`` are that
        group's member/resource ids, aligned, in request order.  The
        matching, arbiter state evolution, and grant order are
        bit-identical to building ``Request`` tuples and calling
        ``allocate`` -- this entry point only skips the per-request
        tuple construction, the ``_validate`` scan, and the per-cycle
        regrouping dict churn, which dominate allocation cost under
        load.  Callers must submit each member at most once per group
        (true of every router flow: one request per input VC per
        candidate resource).  Used by the config-specialized steppers;
        the generic phases keep the ``Request`` path as the executable
        spec.
        """
        if busy_resources:
            busy = set(busy_resources)
            kept_groups: List[int] = []
            kept_members: List[List[int]] = []
            kept_resources: List[List[int]] = []
            for group, members, resources in zip(
                groups, members_lists, resources_lists
            ):
                # repro: hot-ok[bounded same-cycle scratch in the reference allocator]
                live_members: List[int] = []
                # repro: hot-ok[bounded same-cycle scratch in the reference allocator]
                live_resources: List[int] = []
                for member, resource in zip(members, resources):
                    if resource not in busy:
                        live_members.append(member)
                        live_resources.append(resource)
                if live_members:
                    kept_groups.append(group)
                    kept_members.append(live_members)
                    kept_resources.append(live_resources)
            groups = kept_groups
            members_lists = kept_members
            resources_lists = kept_resources
        if not groups:
            return []
        stage1 = self._stage1
        stage2 = self._stage2
        matrix = self._matrix

        # Stage 1: per group, pick one surviving request.  A sole
        # candidate wins unconditionally; for matrix arbiters its
        # priority rotation is two inlined integer ops (identical to
        # what arbitrate() would do) instead of a call.
        survivors: List[Tuple[int, int, int]] = []
        for group, members, resources in zip(
            groups, members_lists, resources_lists
        ):
            arb = stage1[group]
            if len(members) == 1:
                winner_member = members[0]
                if matrix:
                    arb._state = (
                        arb._state | arb._col[winner_member]
                    ) & arb._row_keep[winner_member]
                else:
                    arb.arbitrate(members)
                survivors.append((group, winner_member, resources[0]))
            else:
                winner_member = arb.arbitrate(members)
                survivors.append(
                    (group, winner_member,
                     resources[members.index(winner_member)])
                )

        # Stage 2: per resource, pick one group among the survivors.
        if len(survivors) == 1:
            group, member, resource = survivors[0]
            arb = stage2[resource]
            if matrix:
                arb._state = (
                    arb._state | arb._col[group]
                ) & arb._row_keep[group]
            else:
                arb.arbitrate((group,))
            return [Grant(group, member, resource)]
        by_resource: Dict[int, List[Tuple[int, int]]] = {}
        for group, member, resource in survivors:
            # repro: hot-ok[per-cycle request grouping in the reference allocator; bounded by requests]
            by_resource.setdefault(resource, []).append((group, member))
        grants: List[Grant] = []
        for resource, claimants in by_resource.items():
            arb = stage2[resource]
            if len(claimants) == 1:
                group, member = claimants[0]
                if matrix:
                    arb._state = (
                        arb._state | arb._col[group]
                    ) & arb._row_keep[group]
                else:
                    arb.arbitrate((group,))
                grants.append(Grant(group, member, resource))
            else:
                # repro: hot-ok[bounded same-cycle scratch in the reference allocator]
                winner_group = arb.arbitrate([pair[0] for pair in claimants])
                for group, member in claimants:
                    if group == winner_group:
                        grants.append(Grant(group, member, resource))
                        break
        return grants

    def _validate(self, requests: Sequence[Request]) -> None:
        for r in requests:
            if not 0 <= r.group < self.num_groups:
                raise ValueError(f"group {r.group} out of range")
            if not 0 <= r.member < self.members_per_group:
                raise ValueError(f"member {r.member} out of range")
            if not 0 <= r.resource < self.num_resources:
                raise ValueError(f"resource {r.resource} out of range")


class SpeculativeSwitchAllocator:
    """Two separable switch allocators in parallel (Figure 7c).

    Non-speculative requests go to the primary allocator; speculative
    requests to the secondary.  The combiner gives non-speculative
    grants absolute priority: a speculative grant is discarded if its
    output port *or* its input port was claimed non-speculatively, so
    speculation never costs certain traffic anything ("conservative
    speculation", Section 3.1).

    ``priority="equal"`` removes that protection for the ablation the
    paper argues away: speculative and non-speculative requests compete
    in one allocator, so a failed speculation can have displaced a
    certain flit, costing throughput.
    """

    def __init__(
        self,
        num_ports: int,
        vcs_per_port: int,
        arbiter_kind: str = "matrix",
        allocator_kind: str = "separable",
        priority: str = "conservative",
    ) -> None:
        from .matching import make_allocator

        if priority not in ("conservative", "equal"):
            raise ValueError(f"unknown speculation priority {priority!r}")
        self.num_ports = num_ports
        self.vcs_per_port = vcs_per_port
        self.priority = priority
        self._nonspec = make_allocator(
            allocator_kind, num_ports, vcs_per_port, num_ports, arbiter_kind
        )
        self._spec = make_allocator(
            allocator_kind, num_ports, vcs_per_port, num_ports, arbiter_kind
        )

    def allocate(
        self,
        nonspec_requests: Sequence[Request],
        spec_requests: Sequence[Request],
    ) -> Tuple[List[Grant], List[Grant]]:
        """Returns ``(nonspec_grants, surviving_spec_grants)``."""
        if self.priority == "equal":
            return self._allocate_equal(nonspec_requests, spec_requests)
        # Both sub-allocator kinds are pure on an empty request set
        # (the maximum matcher's rotation only advances on nonempty
        # input), so an empty side skips its allocate call outright.
        if nonspec_requests:
            nonspec_grants = self._nonspec.allocate(nonspec_requests)
        else:
            nonspec_grants = []
        if not spec_requests:
            return nonspec_grants, []
        # repro: hot-ok[bounded same-cycle scratch in the reference allocator]
        taken_outputs = {g.resource for g in nonspec_grants}
        # repro: hot-ok[bounded same-cycle scratch in the reference allocator]
        taken_inputs = {g.group for g in nonspec_grants}
        spec_grants = self._spec.allocate(
            spec_requests, busy_resources=sorted(taken_outputs)
        )
        # repro: hot-ok[bounded same-cycle scratch in the reference allocator]
        surviving = [g for g in spec_grants if g.group not in taken_inputs]
        return nonspec_grants, surviving

    def allocate_grouped(
        self,
        nonspec_groups: Sequence[int],
        nonspec_members: Sequence[Sequence[int]],
        nonspec_resources: Sequence[Sequence[int]],
        spec_groups: Sequence[int],
        spec_members: Sequence[Sequence[int]],
        spec_resources: Sequence[Sequence[int]],
    ) -> Tuple[List[Grant], List[Grant]]:
        """Batched :meth:`allocate`, both priorities.

        Same contract as ``SeparableAllocator.allocate_grouped``.  The
        ``"equal"`` ablation merges both request streams into one
        grouped call on the primary allocator (groups in
        first-appearance order over the nonspec-then-spec
        concatenation, each group's members nonspec first), exactly
        mirroring :meth:`_allocate_equal`'s concatenated ``Request``
        list; grants are classified back by (group, member, resource)
        key -- an input VC is in exactly one state per cycle, so the
        key sets are disjoint.
        """
        if self.priority == "equal":
            return self._allocate_equal_grouped(
                nonspec_groups, nonspec_members, nonspec_resources,
                spec_groups, spec_members, spec_resources,
            )
        if nonspec_groups:
            nonspec_grants = self._nonspec.allocate_grouped(
                nonspec_groups, nonspec_members, nonspec_resources
            )
        else:
            nonspec_grants = []
        if not spec_groups:
            return nonspec_grants, []
        # repro: hot-ok[bounded same-cycle scratch in the reference allocator]
        taken_outputs = {g.resource for g in nonspec_grants}
        # repro: hot-ok[bounded same-cycle scratch in the reference allocator]
        taken_inputs = {g.group for g in nonspec_grants}
        spec_grants = self._spec.allocate_grouped(
            spec_groups,
            spec_members,
            spec_resources,
            busy_resources=sorted(taken_outputs),
        )
        # repro: hot-ok[bounded same-cycle scratch in the reference allocator]
        surviving = [g for g in spec_grants if g.group not in taken_inputs]
        return nonspec_grants, surviving

    def _allocate_equal(
        self,
        nonspec_requests: Sequence[Request],
        spec_requests: Sequence[Request],
    ) -> Tuple[List[Grant], List[Grant]]:
        """One allocator, no priority: speculation can displace certainty."""
        # repro: hot-ok[bounded same-cycle scratch in the reference allocator]
        spec_keys = {(r.group, r.member, r.resource) for r in spec_requests}
        grants = self._nonspec.allocate(
            list(nonspec_requests) + list(spec_requests)
        )
        # repro: hot-ok[bounded same-cycle scratch in the reference allocator]
        nonspec_grants = [
            g for g in grants
            if (g.group, g.member, g.resource) not in spec_keys
        ]
        # repro: hot-ok[bounded same-cycle scratch in the reference allocator]
        spec_grants = [
            g for g in grants
            if (g.group, g.member, g.resource) in spec_keys
        ]
        return nonspec_grants, spec_grants

    def _allocate_equal_grouped(
        self,
        nonspec_groups: Sequence[int],
        nonspec_members: Sequence[Sequence[int]],
        nonspec_resources: Sequence[Sequence[int]],
        spec_groups: Sequence[int],
        spec_members: Sequence[Sequence[int]],
        spec_resources: Sequence[Sequence[int]],
    ) -> Tuple[List[Grant], List[Grant]]:
        """Grouped form of :meth:`_allocate_equal`: one merged call."""
        merged_groups: List[int] = []
        merged_members: List[List[int]] = []
        merged_resources: List[List[int]] = []
        index_of: Dict[int, int] = {}
        for group, members, resources in zip(
            nonspec_groups, nonspec_members, nonspec_resources
        ):
            index_of[group] = len(merged_groups)
            merged_groups.append(group)
            merged_members.append(list(members))
            merged_resources.append(list(resources))
        spec_keys = set()
        for group, members, resources in zip(
            spec_groups, spec_members, spec_resources
        ):
            index = index_of.get(group)
            if index is None:
                index_of[group] = len(merged_groups)
                merged_groups.append(group)
                merged_members.append(list(members))
                merged_resources.append(list(resources))
            else:
                merged_members[index].extend(members)
                merged_resources[index].extend(resources)
            for member, resource in zip(members, resources):
                spec_keys.add((group, member, resource))
        if not merged_groups:
            return [], []
        grants = self._nonspec.allocate_grouped(
            merged_groups, merged_members, merged_resources
        )
        # repro: hot-ok[bounded same-cycle scratch in the reference allocator]
        nonspec_grants = [
            g for g in grants
            if (g.group, g.member, g.resource) not in spec_keys
        ]
        # repro: hot-ok[bounded same-cycle scratch in the reference allocator]
        spec_grants = [
            g for g in grants
            if (g.group, g.member, g.resource) in spec_keys
        ]
        return nonspec_grants, spec_grants
