"""Traffic generation: destination patterns and injection processes.

The paper drives an 8x8 mesh with uniformly distributed traffic from
constant-rate sources injecting 5-flit packets at a fraction of network
capacity.  Destination patterns beyond uniform (transpose,
bit-complement, hotspot) are provided for the extension studies.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from .flit import Packet
from .topology import Mesh

#: Maps (mesh, source, rng) -> destination node.
DestinationPattern = Callable[[Mesh, int, random.Random], int]


def uniform_destination(mesh: Mesh, source: int, rng: random.Random) -> int:
    """Uniform random destination excluding the source itself."""
    destination = rng.randrange(mesh.num_nodes - 1)
    if destination >= source:
        destination += 1
    return destination


def transpose_destination(mesh: Mesh, source: int, rng: random.Random) -> int:
    """Matrix-transpose pattern: (x, y) -> (y, x); self-pairs fall back
    to uniform so diagonal nodes still load the network."""
    x, y = mesh.coordinates(source)
    destination = mesh.node_at(y, x)
    if destination == source:
        return uniform_destination(mesh, source, rng)
    return destination


def bit_complement_destination(mesh: Mesh, source: int, rng: random.Random) -> int:
    """Bit-complement pattern: (x, y) -> (k-1-x, k-1-y)."""
    x, y = mesh.coordinates(source)
    destination = mesh.node_at(mesh.k - 1 - x, mesh.k - 1 - y)
    if destination == source:  # only possible for odd k centre node
        return uniform_destination(mesh, source, rng)
    return destination


#: Fraction of hotspot-pattern packets aimed at the hotspot node.
HOTSPOT_FRACTION = 0.1


def hotspot_destination(mesh: Mesh, source: int, rng: random.Random) -> int:
    """Hotspot pattern: a fixed fraction of traffic converges on the
    mesh's centre node, the rest is uniform.

    The hotspot is the node at ``(k//2, k//2)`` -- the worst place to
    concentrate load on a mesh under dimension-ordered routing.  The
    hotspot node itself (a self-pair) and the uniform remainder both
    fall back to :func:`uniform_destination`, so every source still
    loads the network.
    """
    hotspot = mesh.node_at(mesh.k // 2, mesh.k // 2)
    if source != hotspot and rng.random() < HOTSPOT_FRACTION:
        return hotspot
    return uniform_destination(mesh, source, rng)


def make_destination_pattern(name: str) -> DestinationPattern:
    """Factory for the built-in destination patterns."""
    patterns = {
        "uniform": uniform_destination,
        "transpose": transpose_destination,
        "bit_complement": bit_complement_destination,
        "hotspot": hotspot_destination,
    }
    if name not in patterns:
        raise ValueError(
            f"unknown traffic pattern {name!r}; choose from {sorted(patterns)}"
        )
    return patterns[name]


@dataclass
class PacketSource:
    """Constant-rate (or Bernoulli) packet generator for one node.

    ``rate_packets_per_cycle`` is the injection rate in packets per
    cycle.  The constant-rate process accumulates fractional arrivals
    each cycle (a leaky bucket), matching the paper's "constant rate
    source"; the Bernoulli process flips an i.i.d. coin per cycle.  A
    random initial phase decorrelates the sources.
    """

    node: int
    mesh: Mesh
    rate_packets_per_cycle: float
    packet_length: int
    rng: random.Random
    pattern: DestinationPattern = uniform_destination
    process: str = "constant"
    #: Mean burst length for the "bursty" (on/off Markov) process.
    burst_length: float = 8.0
    #: Per-network packet-id sequence.  The network passes one shared
    #: ``itertools.count()`` to all of its sources so packet ids are a
    #: pure function of the run (ids from the process-global fallback
    #: depend on what else ran in the process, which would make
    #: id-sensitive paths such as o1turn's hash split irreproducible).
    ids: Optional[Iterator[int]] = None
    _accumulator: float = field(init=False)
    _bursting: bool = field(init=False, default=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate_packets_per_cycle <= 1.0:
            raise ValueError(
                f"rate must be in [0, 1] packets/cycle, got "
                f"{self.rate_packets_per_cycle}"
            )
        if self.packet_length < 1:
            raise ValueError(f"packet length must be >= 1, got {self.packet_length}")
        if self.process not in ("constant", "bernoulli", "bursty"):
            raise ValueError(f"unknown injection process {self.process!r}")
        if self.burst_length < 1.0:
            raise ValueError(f"burst_length must be >= 1, got {self.burst_length}")
        # Random phase in [0, 1) so constant-rate sources don't all fire
        # on the same cycle.
        self._accumulator = self.rng.random() if self.process == "constant" else 0.0

    def maybe_generate(self, cycle: int) -> Optional[Packet]:
        """Generate at most one packet for this cycle."""
        if self.rate_packets_per_cycle <= 0.0:
            return None
        if not self._offers_packet():
            return None
        destination = self.pattern(self.mesh, self.node, self.rng)
        if self.ids is not None:
            return Packet(
                source=self.node,
                destination=destination,
                length=self.packet_length,
                creation_cycle=cycle,
                packet_id=next(self.ids),
            )
        return Packet(
            source=self.node,
            destination=destination,
            length=self.packet_length,
            creation_cycle=cycle,
        )

    def offer_horizon(self) -> int:
        """Cycles until the constant-rate process offers its next packet.

        Returns ``k >= 1`` such that the next ``k - 1`` calls to
        :meth:`maybe_generate` would return ``None`` and the ``k``-th
        offers a packet -- advancing the accumulator through exactly the
        same repeated additions those ``k - 1`` calls would have
        performed, so fast-forwarding is bit-identical to per-cycle
        polling.  The crossing addition itself is left to the real
        :meth:`maybe_generate` call at the fire cycle.

        Only meaningful for the "constant" process with a positive
        rate; the stochastic processes draw from the RNG every cycle
        and must be polled.
        """
        if self.process != "constant" or self.rate_packets_per_cycle <= 0.0:
            raise ValueError("offer_horizon requires a constant-rate source")
        rate = self.rate_packets_per_cycle
        accumulator = self._accumulator
        k = 1
        while accumulator + rate < 1.0:
            accumulator += rate
            k += 1
        self._accumulator = accumulator
        return k

    def _offers_packet(self) -> bool:
        rate = self.rate_packets_per_cycle
        if self.process == "constant":
            self._accumulator += rate
            if self._accumulator < 1.0:
                return False
            self._accumulator -= 1.0
            return True
        if self.process == "bernoulli":
            return self.rng.random() < rate

        # "bursty": a two-state on/off Markov process.  In the ON state
        # a packet is offered every eligible cycle at one per
        # packet-length cycles (back-to-back packets); the OFF state is
        # sized so the long-run average still equals `rate`.  Bursts
        # average `burst_length` packets.
        per_burst_cycles = self.burst_length * self.packet_length
        on_fraction = rate * self.packet_length  # fraction of time ON
        if on_fraction >= 1.0:
            on_fraction = 1.0
        off_cycles = (
            per_burst_cycles * (1.0 - on_fraction) / on_fraction
            if on_fraction > 0 else float("inf")
        )
        if self._bursting:
            if self.rng.random() < 1.0 / per_burst_cycles:
                self._bursting = False
                return False
        else:
            if self.rng.random() < 1.0 / max(off_cycles, 1e-9):
                self._bursting = True
        if not self._bursting:
            return False
        # ON: emit one packet every `packet_length` cycles.
        self._accumulator += 1.0 / self.packet_length
        if self._accumulator < 1.0:
            return False
        self._accumulator -= 1.0
        return True


def rate_from_capacity_fraction(
    mesh: Mesh, fraction_of_capacity: float, packet_length: int
) -> float:
    """Convert the paper's x-axis (fraction of capacity) to packets/cycle."""
    if fraction_of_capacity < 0:
        raise ValueError(f"fraction must be >= 0, got {fraction_of_capacity}")
    flits_per_cycle = fraction_of_capacity * mesh.capacity_flits_per_node_cycle()
    return flits_per_cycle / packet_length
