"""Virtual-channel class policies: dateline (torus) and O1TURN (mesh).

Virtual channels do double duty: beyond decoupling buffers for
throughput (the paper's focus), restricting *which* VCs a packet may use
breaks cyclic channel dependencies.  Two classic schemes are provided as
candidate-VC policies consulted by the VC allocator:

* **Dateline classes** for the torus: each dimension's wrap link is the
  ring's dateline.  Packets start in class 0 and move to class 1 for the
  rest of the current dimension once they cross the dateline; entering a
  new dimension resets the class.  Minimal routing crosses each dateline
  at most once, so class transitions are one-way and each ring's channel
  dependency graph is acyclic (Dally & Seitz).

* **O1TURN classes** for the mesh: each packet commits to XY or YX
  dimension order at injection; XY packets ride class-0 VCs and YX
  packets class-1, keeping the two (individually acyclic) routing orders
  from forming joint cycles.

With ``v`` VCs per port, class 0 is VCs ``[0, ceil(v/2))`` and class 1
the rest; policies therefore need ``v >= 2``.
"""

from __future__ import annotations

from typing import Sequence

from .flit import Flit
from .topology import LOCAL, Mesh, port_dimension


def class_partition(num_vcs: int) -> tuple:
    """``(class0_vcs, class1_vcs)`` ranges for a VC count."""
    if num_vcs < 2:
        raise ValueError("VC class policies need at least 2 VCs per port")
    split = (num_vcs + 1) // 2
    return tuple(range(split)), tuple(range(split, num_vcs))


def vc_class(vc: int, num_vcs: int) -> int:
    """Class (0 or 1) of a VC index."""
    split = (num_vcs + 1) // 2
    return 0 if vc < split else 1


class AllVCs:
    """No restriction: any output VC of the routed port (mesh default)."""

    def __init__(self, num_vcs: int) -> None:
        if num_vcs < 1:
            raise ValueError("need at least 1 VC")
        self._all = tuple(range(num_vcs))

    def allowed_vcs(
        self,
        topo: Mesh,
        node: int,
        arrival_port: int,
        input_vc: int,
        route_port: int,
        head: Flit,
    ) -> Sequence[int]:
        return self._all


class DatelineVCs:
    """Torus dateline classes (see module docstring)."""

    def __init__(self, num_vcs: int) -> None:
        self.num_vcs = num_vcs
        self.class0, self.class1 = class_partition(num_vcs)

    def allowed_vcs(
        self,
        topo: Mesh,
        node: int,
        arrival_port: int,
        input_vc: int,
        route_port: int,
        head: Flit,
    ) -> Sequence[int]:
        if route_port == LOCAL:
            # Ejection: the sink consumes immediately; no class needed.
            return self.class0 + self.class1
        crosses = topo.is_wrap_link(node, route_port)
        same_dimension = (
            port_dimension(arrival_port) == port_dimension(route_port)
        )
        if same_dimension:
            already_crossed = vc_class(input_vc, self.num_vcs) == 1
            next_class = 1 if (crosses or already_crossed) else 0
        else:
            # Entering a fresh ring (or injected): class restarts.
            next_class = 1 if crosses else 0
        return self.class1 if next_class else self.class0


class O1TurnVCs:
    """Mesh O1TURN classes: the packet's routing order picks the class."""

    def __init__(self, num_vcs: int) -> None:
        self.num_vcs = num_vcs
        self.class0, self.class1 = class_partition(num_vcs)

    def allowed_vcs(
        self,
        topo: Mesh,
        node: int,
        arrival_port: int,
        input_vc: int,
        route_port: int,
        head: Flit,
    ) -> Sequence[int]:
        if route_port == LOCAL:
            return self.class0 + self.class1
        choice = o1turn_choice(head.packet)
        return self.class1 if choice == "yx" else self.class0


class AdaptiveEscapeVCs:
    """Duato escape classes for minimal adaptive routing on a mesh.

    VC 0 is the *escape* channel: it may only be allocated along the
    packet's dimension-order (XY) port, where the escape subnetwork --
    DOR restricted to VC 0 -- is deadlock-free by the usual turn
    argument.  VCs 1..v-1 are fully adaptive and usable on any minimal
    port.  A packet that fails to win any permitted VC re-iterates the
    routing stage (paper footnote 5, option b) and, after a few
    attempts, falls back to the DOR port where the escape VC guarantees
    eventual progress.
    """

    def __init__(self, num_vcs: int) -> None:
        if num_vcs < 2:
            raise ValueError(
                "adaptive routing needs >= 2 VCs (one escape + adaptive)"
            )
        self.num_vcs = num_vcs
        self.escape = (0,)
        self.adaptive = tuple(range(1, num_vcs))

    def allowed_vcs(
        self,
        topo: Mesh,
        node: int,
        arrival_port: int,
        input_vc: int,
        route_port: int,
        head: Flit,
    ) -> Sequence[int]:
        if route_port == LOCAL:
            return self.escape + self.adaptive
        from .routing import dimension_order_route

        dor_port = dimension_order_route(topo, node, head.destination)
        if route_port == dor_port:
            return self.escape + self.adaptive
        return self.adaptive


def o1turn_choice(packet) -> str:
    """The packet's committed dimension order ("xy" or "yx").

    Derived deterministically (but uniformly) from the packet id with a
    Knuth multiplicative hash, so simulations stay reproducible without
    threading extra randomness through the sources.
    """
    return "yx" if (packet.packet_id * 2654435761) & (1 << 16) else "xy"


def make_vc_policy(routing_function: str, topo: Mesh, num_vcs: int):
    """Select the VC-class policy implied by topology + routing choice."""
    if topo.has_wrap_links:
        if routing_function in ("o1turn", "adaptive"):
            raise ValueError(
                f"{routing_function} routing is mesh-only (a torus would "
                "need additional VC classes on top of the datelines)"
            )
        return DatelineVCs(num_vcs)
    if routing_function == "o1turn":
        return O1TurnVCs(num_vcs)
    if routing_function == "adaptive":
        return AdaptiveEscapeVCs(num_vcs)
    return AllVCs(num_vcs)
