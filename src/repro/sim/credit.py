"""Credit-based flow control.

Each output virtual channel (or output port, for wormhole routers)
keeps a credit counter initialised to the downstream input buffer's
capacity.  A flit may only traverse the switch when a credit is
available; the credit is consumed as the flit departs and returned when
the flit later leaves the downstream buffer, after the credit has
propagated back and been processed.

:func:`turnaround_cycles` and :func:`turnaround_timeline` reproduce the
buffer-turnaround accounting of Figure 16 / Section 5.2: 4 cycles for
pipelined wormhole and speculative VC routers, 5 for the non-speculative
VC router (one extra credit-pipeline stage), 2 for the single-cycle
model, and 7 for a speculative router with 4-cycle credit propagation
(Figure 18).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


class CreditCounter:
    """Credits for one output VC: free slots in the downstream buffer."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"credit capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._credits = capacity

    @property
    def available(self) -> int:
        return self._credits

    @property
    def in_use(self) -> int:
        """Downstream slots currently occupied or spoken for."""
        return self.capacity - self._credits

    def __bool__(self) -> bool:
        return self._credits > 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CreditCounter({self._credits}/{self.capacity})"

    def consume(self) -> None:
        """Spend one credit (flit departs); raises if none remain."""
        if self._credits <= 0:
            raise ValueError("credit underflow: flit sent without a credit")
        self._credits -= 1

    def restore(self) -> None:
        """Return one credit (credit arrived); raises above capacity."""
        if self._credits >= self.capacity:
            raise ValueError("credit overflow: more credits than buffer slots")
        self._credits += 1


class InfiniteCredits:
    """Ejection ports sink flits immediately (paper: 'immediate ejection')."""

    capacity = float("inf")
    available = float("inf")
    in_use = 0
    #: Mirrors :class:`CreditCounter`'s storage so the specialized
    #: steppers can read ``._credits`` on any counter kind -- a plain
    #: attribute compare instead of a ``__bool__``/property call in the
    #: per-VC credit checks that run every allocation cycle.
    _credits = float("inf")

    def __bool__(self) -> bool:
        return True

    def consume(self) -> None:  # noqa: D102 - trivially nothing to track
        pass

    def restore(self) -> None:  # noqa: D102
        pass


@dataclass(frozen=True)
class CreditLoopTiming:
    """The delay components of one credit loop (Figure 16)."""

    credit_propagation: int   # wire cycles for the credit going upstream
    credit_pipeline: int      # processing cycles in the upstream router
    flit_pipeline: int        # SA + ST cycles before the refill flit departs
    flit_propagation: int     # wire cycles for the refill flit going downstream

    def __post_init__(self) -> None:
        for name in ("credit_propagation", "credit_pipeline",
                     "flit_pipeline", "flit_propagation"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    @property
    def turnaround(self) -> int:
        """Idle cycles between a buffer slot being freed and refilled."""
        return (
            self.credit_propagation
            + self.credit_pipeline
            + self.flit_pipeline
            + self.flit_propagation
        )


def turnaround_cycles(
    credit_pipeline: int,
    credit_propagation: int = 1,
    flit_pipeline: int = 2,
    flit_propagation: int = 1,
) -> int:
    """Buffer turnaround for a router with the given credit pipeline depth.

    ``flit_pipeline`` is the number of router cycles from the credit
    becoming usable to the refill flit's switch traversal (SA + ST = 2
    for the pipelined routers; 1 for the single-cycle model, where
    allocation and traversal share the cycle).
    """
    return CreditLoopTiming(
        credit_propagation, credit_pipeline, flit_pipeline, flit_propagation
    ).turnaround


def turnaround_timeline(timing: CreditLoopTiming) -> List[Tuple[int, str]]:
    """The Figure 16 timeline as ``(cycle offset, event)`` pairs."""
    events = [(0, "flit leaves downstream buffer; credit sent upstream")]
    t = timing.credit_propagation
    events.append((t, "credit received at upstream router"))
    t += timing.credit_pipeline
    events.append((t, "credit processed; freed buffer allocatable"))
    t += timing.flit_pipeline
    events.append((t, "refill flit traverses switch and departs"))
    t += timing.flit_propagation
    events.append((t, "refill flit written into the freed buffer slot"))
    return events


#: Figure 16 / Section 5.2 reference timings, by router model.
WORMHOLE_TIMING = CreditLoopTiming(1, 1, 1, 1)
SPECULATIVE_VC_TIMING = CreditLoopTiming(1, 1, 1, 1)
NONSPECULATIVE_VC_TIMING = CreditLoopTiming(1, 2, 1, 1)
SINGLE_CYCLE_TIMING = CreditLoopTiming(1, 0, 0, 1)
SPECULATIVE_VC_SLOW_CREDIT_TIMING = CreditLoopTiming(4, 1, 1, 1)
