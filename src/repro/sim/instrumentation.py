"""Engine instrumentation: per-run counters and progress hooks.

The simulation driver fills a :class:`RunCounters` on every run -- how
many cycles each phase took, how many flits moved, how the allocators
behaved -- so sweeps can report where simulation time goes without
re-running anything.  All counter fields are deterministic functions of
the configuration and seed; wall-clock timings live in a separate
``compare=False`` field so two runs of the same point (serial, parallel,
or cache-restored) compare equal.

:class:`ProgressHook` is the observer protocol the sweep runtime calls
as points start and finish, for live progress display over long grids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Optional

try:  # Protocol is 3.8+; runtime_checkable decorates it for isinstance.
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - ancient interpreters only
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls

if TYPE_CHECKING:  # pragma: no cover
    from .config import SimConfig
    from .metrics import RunResult


@dataclass
class RunCounters:
    """Deterministic per-run event counters plus wall-clock phase times.

    Everything except ``wall_seconds`` is reproducible bit-for-bit from
    (config, measurement, seed); ``wall_seconds`` is excluded from
    equality so results survive caching and process hops unchanged.
    """

    #: Cycles spent in each engine phase.
    warmup_cycles: int = 0
    sample_cycles: int = 0
    drain_cycles: int = 0
    #: Flit traffic over the whole run (warm-up included).
    flits_injected: int = 0
    flits_ejected: int = 0
    flits_forwarded: int = 0
    packets_routed: int = 0
    #: Allocator behaviour, summed over all routers.
    sa_grants: int = 0
    spec_grants: int = 0
    spec_wasted: int = 0
    credits_stalled: int = 0
    #: Wall-clock seconds per phase ("warmup" / "sample" / "drain"),
    #: plus "total".  Not part of equality: timing is not reproducible.
    wall_seconds: Dict[str, float] = field(default_factory=dict, compare=False)
    #: Specialization envelope: how many routers ran the compiled fast
    #: step versus the generic one, and why the generic path was taken
    #: (``None`` when every router specialized).  Excluded from
    #: equality -- checked/generic reruns of the same point must still
    #: compare equal to the fast run they validate.
    routers_specialized: int = field(default=0, compare=False)
    routers_generic: int = field(default=0, compare=False)
    generic_step_reason: Optional[str] = field(default=None, compare=False)

    @property
    def total_cycles(self) -> int:
        return self.warmup_cycles + self.sample_cycles + self.drain_cycles

    @property
    def misspeculation_rate(self) -> float:
        """Fraction of speculative grants that were wasted."""
        if not self.spec_grants:
            return 0.0
        return self.spec_wasted / self.spec_grants

    @property
    def speculation_win_rate(self) -> float:
        """Fraction of speculative grants that moved a flit.

        The complement of :attr:`misspeculation_rate`; 0.0 (not a
        division error) when the router never speculated, so
        non-speculative configurations report an honest zero.
        """
        if not self.spec_grants:
            return 0.0
        return 1.0 - self.spec_wasted / self.spec_grants

    @property
    def cycles_per_second(self) -> float:
        """Simulated cycles per wall-clock second (0 if untimed)."""
        total = self.wall_seconds.get("total", 0.0)
        if total <= 0:
            return 0.0
        return self.total_cycles / total

    def to_dict(self) -> Dict[str, Any]:
        return {
            "warmup_cycles": self.warmup_cycles,
            "sample_cycles": self.sample_cycles,
            "drain_cycles": self.drain_cycles,
            "flits_injected": self.flits_injected,
            "flits_ejected": self.flits_ejected,
            "flits_forwarded": self.flits_forwarded,
            "packets_routed": self.packets_routed,
            "sa_grants": self.sa_grants,
            "spec_grants": self.spec_grants,
            "spec_wasted": self.spec_wasted,
            "credits_stalled": self.credits_stalled,
            "wall_seconds": dict(self.wall_seconds),
            "routers_specialized": self.routers_specialized,
            "routers_generic": self.routers_generic,
            "generic_step_reason": self.generic_step_reason,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunCounters":
        return cls(**data)

    def describe(self) -> str:
        rate = self.cycles_per_second
        timing = f", {rate:,.0f} cycles/s" if rate else ""
        return (
            f"{self.total_cycles:,} cycles "
            f"(warmup {self.warmup_cycles:,} / sample {self.sample_cycles:,}"
            f" / drain {self.drain_cycles:,}), "
            f"{self.flits_forwarded:,} flits forwarded, "
            f"{self.sa_grants:,} switch grants, "
            f"{self.spec_wasted:,}/{self.spec_grants:,} "
            f"speculations wasted{timing}"
        )


@runtime_checkable
class ProgressHook(Protocol):
    """Observer for live sweep/grid progress.

    Implement any subset; the runtime calls every method, so use
    :class:`NullProgress` as a base when only one callback matters.
    """

    def on_batch_start(self, total: int) -> None:
        """A batch of ``total`` points is about to run."""

    def on_point_start(self, index: int, total: int,
                       config: "SimConfig") -> None:
        """Point ``index`` (0-based) began executing."""

    def on_point_done(self, index: int, total: int, config: "SimConfig",
                      result: "RunResult", cached: bool) -> None:
        """Point ``index`` finished (``cached`` if served from cache)."""

    def on_batch_done(self, total: int) -> None:
        """Every point of the batch has a result."""


class NullProgress:
    """No-op :class:`ProgressHook`; subclass and override what you need."""

    def on_batch_start(self, total: int) -> None:
        pass

    def on_point_start(self, index: int, total: int, config) -> None:
        pass

    def on_point_done(self, index: int, total: int, config, result,
                      cached: bool) -> None:
        pass

    def on_batch_done(self, total: int) -> None:
        pass


class PrintProgress(NullProgress):
    """Minimal textual progress: one line per finished point."""

    def __init__(self, stream=None) -> None:
        import sys

        self._stream = stream or sys.stderr
        self._done = 0

    def on_batch_start(self, total: int) -> None:
        self._done = 0

    def on_point_done(self, index: int, total: int, config, result,
                      cached: bool) -> None:
        self._done += 1
        source = "cache" if cached else "run"
        spec = ""
        if result.counters is not None and result.counters.spec_grants:
            spec = f"  spec win {result.counters.speculation_win_rate:.1%}"
        print(
            f"[{self._done}/{total}] load {config.injection_fraction:.2f} "
            f"seed {config.seed} ({source}): {result.describe()}{spec}",
            file=self._stream,
        )


def collect_counters(network, warmup_cycles: int, sample_cycles: int,
                     drain_cycles: int,
                     wall_seconds: Optional[Dict[str, float]] = None
                     ) -> RunCounters:
    """Snapshot a finished :class:`~repro.sim.network.Network`'s counters."""
    stats = [router.stats for router in network.routers]
    return RunCounters(
        warmup_cycles=warmup_cycles,
        sample_cycles=sample_cycles,
        drain_cycles=drain_cycles,
        flits_injected=network.total_flits_injected(),
        flits_ejected=network.total_flits_ejected(),
        flits_forwarded=sum(s.flits_forwarded for s in stats),
        packets_routed=sum(s.packets_routed for s in stats),
        sa_grants=sum(s.sa_grants for s in stats),
        spec_grants=sum(s.spec_grants for s in stats),
        spec_wasted=sum(s.spec_wasted for s in stats),
        credits_stalled=sum(s.credits_stalled for s in stats),
        wall_seconds=dict(wall_seconds or {}),
        routers_specialized=network.routers_specialized,
        routers_generic=len(network.routers) - network.routers_specialized,
        generic_step_reason=network.generic_step_reason,
    )
