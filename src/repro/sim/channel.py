"""Pipelined inter-router channels for flits and credits.

Timing convention (matching the paper's per-hop accounting, DESIGN.md
section 4): a flit that traverses the crossbar (ST) during cycle ``t``
spends cycle ``t+1`` on the wire and is written into the downstream
input buffer at the end of that cycle, becoming *processable* at cycle
``t + 1 + propagation``.  With the paper's 1-cycle propagation delay a
flit STing at ``t`` is processable downstream at ``t+2``, which makes
per-hop latency = pipeline depth + 1 (e.g. 4 cycles for the 3-stage
wormhole router, so the 29-cycle zero-load latency of Figure 13 falls
out exactly).

Credits use the same structure in the reverse direction with delay =
credit propagation + credit pipeline (processing) cycles.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, List, Tuple, TypeVar

T = TypeVar("T")


class PipelinedChannel(Generic[T]):
    """A delay line delivering items ``delay + 1`` cycles after send.

    The ``+1`` models the receiver-side register write: an item sent
    during cycle ``t`` is available for processing at cycle
    ``t + delay + 1``.
    """

    def __init__(self, delay: int) -> None:
        if delay < 0:
            raise ValueError(f"channel delay must be >= 0, got {delay}")
        self.delay = delay
        self._in_flight: Deque[Tuple[int, T]] = deque()

    def send(self, item: T, cycle: int) -> None:
        """Inject an item at cycle ``cycle``; it arrives at ``cycle+delay+1``."""
        arrival = cycle + self.delay + 1
        if self._in_flight and self._in_flight[-1][0] > arrival:
            raise ValueError("channel sends must be in non-decreasing cycle order")
        self._in_flight.append((arrival, item))

    def deliver(self, cycle: int) -> List[T]:
        """Pop every item whose arrival cycle is <= ``cycle``."""
        arrived: List[T] = []
        while self._in_flight and self._in_flight[0][0] <= cycle:
            arrived.append(self._in_flight.popleft()[1])
        return arrived

    @property
    def occupancy(self) -> int:
        """Number of items still in flight."""
        return len(self._in_flight)

    def __bool__(self) -> bool:
        return bool(self._in_flight)

    def peek_all(self) -> List[T]:
        """Items in flight, in order (for invariant checks)."""
        return [item for _, item in self._in_flight]
