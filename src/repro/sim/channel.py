"""Pipelined inter-router channels for flits and credits.

Timing convention (matching the paper's per-hop accounting, DESIGN.md
section 4): a flit that traverses the crossbar (ST) during cycle ``t``
spends cycle ``t+1`` on the wire and is written into the downstream
input buffer at the end of that cycle, becoming *processable* at cycle
``t + 1 + propagation``.  With the paper's 1-cycle propagation delay a
flit STing at ``t`` is processable downstream at ``t+2``, which makes
per-hop latency = pipeline depth + 1 (e.g. 4 cycles for the 3-stage
wormhole router, so the 29-cycle zero-load latency of Figure 13 falls
out exactly).

Credits use the same structure in the reverse direction with delay =
credit propagation + credit pipeline (processing) cycles.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, List, Sequence, Tuple, TypeVar

T = TypeVar("T")

#: Shared empty result for idle channels: ``deliver()`` on a channel
#: with nothing in flight is by far the most common call in a polling
#: stepper, and allocating a fresh list for each would dominate the
#: allocation profile.  Callers only iterate (or compare) the result.
_NOTHING: Tuple = ()


class PipelinedChannel(Generic[T]):
    """A delay line delivering items ``delay + 1`` cycles after send.

    The ``+1`` models the receiver-side register write: an item sent
    during cycle ``t`` is available for processing at cycle
    ``t + delay + 1``.

    A channel may additionally be bound to a :class:`network event
    wheel <repro.sim.network._EventWheel>`: ``send()`` then registers
    the channel's drain entry in the bucket for the arrival cycle, so
    the fast stepper touches only channels with due arrivals instead of
    polling ``deliver()`` on every channel every cycle.
    """

    __slots__ = ("delay", "_in_flight", "_wheel", "_wheel_entry")

    def __init__(self, delay: int) -> None:
        if delay < 0:
            raise ValueError(f"channel delay must be >= 0, got {delay}")
        self.delay = delay
        self._in_flight: Deque[Tuple[int, T]] = deque()
        self._wheel = None
        self._wheel_entry = None

    def bind_wheel(self, wheel, handler) -> None:
        """Register arrivals with ``wheel``; drains call ``handler(item, cycle)``."""
        self._wheel = wheel
        self._wheel_entry = (self._in_flight, handler)

    def send(self, item: T, cycle: int) -> None:
        """Inject an item at cycle ``cycle``; it arrives at ``cycle+delay+1``."""
        arrival = cycle + self.delay + 1
        if self._in_flight and self._in_flight[-1][0] > arrival:
            raise ValueError("channel sends must be in non-decreasing cycle order")
        self._in_flight.append((arrival, item))
        wheel = self._wheel
        if wheel is not None:
            wheel.schedule(arrival, self._wheel_entry)

    def deliver(self, cycle: int) -> Sequence[T]:
        """Pop every item whose arrival cycle is <= ``cycle``.

        Returns a shared empty tuple when nothing is due (the common
        case under polling), a fresh list otherwise.
        """
        in_flight = self._in_flight
        if not in_flight or in_flight[0][0] > cycle:
            return _NOTHING
        arrived: List[T] = []
        while in_flight and in_flight[0][0] <= cycle:
            arrived.append(in_flight.popleft()[1])
        return arrived

    @property
    def occupancy(self) -> int:
        """Number of items still in flight."""
        return len(self._in_flight)

    def __bool__(self) -> bool:
        return bool(self._in_flight)

    def peek_all(self) -> List[T]:
        """Items in flight, in order (for invariant checks)."""
        return [item for _, item in self._in_flight]
