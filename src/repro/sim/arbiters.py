"""Functional arbiters used by the allocators.

The paper's routers use *matrix arbiters*: an upper-triangular matrix of
priority bits records, for every pair of requestors, which currently has
priority.  The winner is the requestor with priority over every other
active requestor; after winning, its priority is set lowest, giving a
least-recently-served discipline.  A round-robin arbiter is provided as
an alternative policy for ablation studies.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


class Arbiter:
    """Interface: pick one winner among requesting indices."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError(f"arbiter size must be >= 1, got {n}")
        self.n = n

    def arbitrate(self, requests: Sequence[int]) -> Optional[int]:
        """Return the winning index among ``requests`` (None if empty).

        Winning updates the arbiter's internal priority state.
        """
        raise NotImplementedError

    def _check(self, requests: Sequence[int]) -> None:
        for r in requests:
            if not 0 <= r < self.n:
                raise ValueError(f"request index {r} out of range 0..{self.n - 1}")


class MatrixArbiter(Arbiter):
    """Least-recently-served matrix arbiter (Figure 10).

    ``self._priority[i][j]`` is True when ``i`` has priority over ``j``.
    Only the upper triangle is stored conceptually; we keep the full
    matrix for clarity (the diagonal is unused).
    """

    def __init__(self, n: int) -> None:
        super().__init__(n)
        # Initially, lower indices have priority (matrix all-True above
        # the diagonal).
        self._priority: List[List[bool]] = [
            [i < j for j in range(n)] for i in range(n)
        ]

    def has_priority(self, i: int, j: int) -> bool:
        """True if requestor ``i`` currently beats requestor ``j``."""
        return self._priority[i][j]

    def arbitrate(self, requests: Sequence[int]) -> Optional[int]:
        self._check(requests)
        if not requests:
            return None
        active = set(requests)
        winner = None
        for i in active:
            if all(self._priority[i][j] for j in active if j != i):
                winner = i
                break
        if winner is None:
            # The matrix invariant (antisymmetry) guarantees a unique
            # winner exists among any non-empty subset; reaching here
            # means state corruption.
            raise AssertionError("matrix arbiter found no winner")
        self._lower_priority(winner)
        return winner

    def _lower_priority(self, winner: int) -> None:
        """Set the winner's priority lowest among all requestors."""
        for j in range(self.n):
            if j != winner:
                self._priority[winner][j] = False
                self._priority[j][winner] = True

    def check_invariant(self) -> bool:
        """Antisymmetry: exactly one of (i beats j), (j beats i) holds."""
        return all(
            self._priority[i][j] != self._priority[j][i]
            for i in range(self.n)
            for j in range(self.n)
            if i != j
        )


class RoundRobinArbiter(Arbiter):
    """Rotating-priority arbiter: the winner becomes lowest priority."""

    def __init__(self, n: int) -> None:
        super().__init__(n)
        self._next = 0

    def arbitrate(self, requests: Sequence[int]) -> Optional[int]:
        self._check(requests)
        if not requests:
            return None
        active = set(requests)
        for offset in range(self.n):
            candidate = (self._next + offset) % self.n
            if candidate in active:
                self._next = (candidate + 1) % self.n
                return candidate
        raise AssertionError("round-robin arbiter found no winner")


def make_arbiter(kind: str, n: int) -> Arbiter:
    """Factory: ``kind`` is ``"matrix"`` (the paper's) or ``"round_robin"``."""
    if kind == "matrix":
        return MatrixArbiter(n)
    if kind == "round_robin":
        return RoundRobinArbiter(n)
    raise ValueError(f"unknown arbiter kind {kind!r}")
