"""Functional arbiters used by the allocators.

The paper's routers use *matrix arbiters*: an upper-triangular matrix of
priority bits records, for every pair of requestors, which currently has
priority.  The winner is the requestor with priority over every other
active requestor; after winning, its priority is set lowest, giving a
least-recently-served discipline.  A round-robin arbiter is provided as
an alternative policy for ablation studies.
"""

from __future__ import annotations

from typing import Optional, Sequence


class Arbiter:
    """Interface: pick one winner among requesting indices."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError(f"arbiter size must be >= 1, got {n}")
        self.n = n

    def arbitrate(self, requests: Sequence[int]) -> Optional[int]:
        """Return the winning index among ``requests`` (None if empty).

        Winning updates the arbiter's internal priority state.
        """
        raise NotImplementedError

    def _check(self, requests: Sequence[int]) -> None:
        for r in requests:
            if not 0 <= r < self.n:
                raise ValueError(f"request index {r} out of range 0..{self.n - 1}")


class MatrixArbiter(Arbiter):
    """Least-recently-served matrix arbiter (Figure 10).

    The whole priority matrix is one flat int ``self._state``: bit
    ``i * n + j`` set means ``i`` has priority over ``j`` (the diagonal
    is unused and kept clear).  Row ``i`` is the bitfield at shift
    ``i * n``, so the winner test is a shift-and-mask pair, and the
    after-win rotation -- set the winner's column everywhere, clear its
    row -- is two integer operations against precomputed masks instead
    of a per-row Python loop.  This arbiter runs on every switch and VC
    allocation of every simulated cycle; the flat-int layout is what
    keeps it off the saturation-load profile.
    """

    def __init__(self, n: int) -> None:
        super().__init__(n)
        # Initially, lower indices have priority (all bits above the
        # diagonal set in each row).
        full = (1 << n) - 1
        state = 0
        for i in range(n):
            state |= (full & ~((1 << (i + 1)) - 1)) << (i * n)
        self._state = state
        self._shift = tuple(i * n for i in range(n))
        #: OR-ing ``_col[w]`` sets bit ``w`` in every row; AND-ing
        #: ``_row_keep[w]`` then clears row ``w`` (including the
        #: diagonal bit the column OR just set).
        self._col = tuple(
            sum(1 << (j * n + w) for j in range(n)) for w in range(n)
        )
        self._row_keep = tuple(~(full << (w * n)) for w in range(n))

    def has_priority(self, i: int, j: int) -> bool:
        """True if requestor ``i`` currently beats requestor ``j``."""
        return bool(self._state >> (i * self.n + j) & 1)

    def arbitrate(self, requests: Sequence[int]) -> Optional[int]:
        self._check(requests)
        if not requests:
            return None
        if len(requests) == 1:
            # Sole requestor wins unconditionally; priority still
            # rotates exactly as the general path would rotate it.
            winner = requests[0]
        else:
            # Iterate the request sequence directly: duplicates are
            # harmless to both loops (OR is idempotent; the matrix
            # invariant makes the winner unique), and sequence order --
            # unlike set order -- is part of the deterministic contract.
            active_mask = 0
            for i in requests:
                active_mask |= 1 << i
            state = self._state
            shift = self._shift
            winner = None
            for i in requests:
                others = active_mask & ~(1 << i)
                if (state >> shift[i]) & others == others:
                    winner = i
                    break
            if winner is None:
                # The matrix invariant (antisymmetry) guarantees a
                # unique winner exists among any non-empty subset;
                # reaching here means state corruption.
                raise AssertionError("matrix arbiter found no winner")
        self._state = (self._state | self._col[winner]) & self._row_keep[winner]
        return winner

    def _lower_priority(self, winner: int) -> None:
        """Set the winner's priority lowest among all requestors."""
        self._state = (self._state | self._col[winner]) & self._row_keep[winner]

    def check_invariant(self) -> bool:
        """Antisymmetry: exactly one of (i beats j), (j beats i) holds."""
        return all(
            self.has_priority(i, j) != self.has_priority(j, i)
            for i in range(self.n)
            for j in range(self.n)
            if i != j
        )


class RoundRobinArbiter(Arbiter):
    """Rotating-priority arbiter: the winner becomes lowest priority."""

    def __init__(self, n: int) -> None:
        super().__init__(n)
        self._next = 0

    def arbitrate(self, requests: Sequence[int]) -> Optional[int]:
        self._check(requests)
        if not requests:
            return None
        if len(requests) == 1:
            winner = requests[0]
            self._next = (winner + 1) % self.n
            return winner
        active = set(requests)
        for offset in range(self.n):
            candidate = (self._next + offset) % self.n
            if candidate in active:
                self._next = (candidate + 1) % self.n
                return candidate
        raise AssertionError("round-robin arbiter found no winner")


def make_arbiter(kind: str, n: int) -> Arbiter:
    """Factory: ``kind`` is ``"matrix"`` (the paper's) or ``"round_robin"``."""
    if kind == "matrix":
        return MatrixArbiter(n)
    if kind == "round_robin":
        return RoundRobinArbiter(n)
    raise ValueError(f"unknown arbiter kind {kind!r}")
