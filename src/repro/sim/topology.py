"""k-ary 2-mesh and 2-cube (torus) topologies and network capacity.

The paper evaluates an 8x8 mesh; the torus is one of the "other
topologies" its conclusion proposes extending to.  Nodes are numbered
row-major: ``node = y * k + x``.  Router ports follow the conventional
5-port layout (p=5): LOCAL (injection/ejection), EAST, WEST, NORTH,
SOUTH.  NORTH is decreasing ``y``.

Capacity under uniform random traffic is bisection-limited: a ``k x k``
mesh supports ``4/k`` flits per node per cycle (0.5 at k=8 -- the
paper's 100%-of-capacity point); the torus's wrap links double the
bisection, giving ``8/k`` (Dally & Towles).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

# Port indices.
LOCAL, EAST, WEST, NORTH, SOUTH = range(5)
PORT_NAMES = ("local", "east", "west", "north", "south")
NUM_PORTS = 5

#: Opposite direction of each port (LOCAL has no opposite).
OPPOSITE = {EAST: WEST, WEST: EAST, NORTH: SOUTH, SOUTH: NORTH}

#: Ports moving along X and along Y.
X_PORTS = (EAST, WEST)
Y_PORTS = (NORTH, SOUTH)


def port_dimension(port: int) -> Optional[int]:
    """0 for X-dimension ports, 1 for Y, None for LOCAL."""
    if port in X_PORTS:
        return 0
    if port in Y_PORTS:
        return 1
    if port == LOCAL:
        return None
    raise ValueError(f"unknown port {port}")


@dataclass(frozen=True)
class Mesh:
    """A k x k mesh."""

    k: int

    def __post_init__(self) -> None:
        if self.k < 2:
            raise ValueError(f"mesh radix must be >= 2, got {self.k}")

    @property
    def num_nodes(self) -> int:
        return self.k * self.k

    def coordinates(self, node: int) -> Tuple[int, int]:
        """``(x, y)`` of a node id."""
        self._check_node(node)
        return node % self.k, node // self.k

    def node_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.k and 0 <= y < self.k):
            raise ValueError(f"coordinates ({x}, {y}) outside {self.k}x{self.k} mesh")
        return y * self.k + x

    def neighbor(self, node: int, port: int) -> Optional[int]:
        """Neighbouring node through ``port``, or None at a mesh edge."""
        x, y = self.coordinates(node)
        if port == EAST:
            return self.node_at(x + 1, y) if x + 1 < self.k else None
        if port == WEST:
            return self.node_at(x - 1, y) if x - 1 >= 0 else None
        if port == NORTH:
            return self.node_at(x, y - 1) if y - 1 >= 0 else None
        if port == SOUTH:
            return self.node_at(x, y + 1) if y + 1 < self.k else None
        if port == LOCAL:
            return None
        raise ValueError(f"unknown port {port}")

    def links(self) -> Iterator[Tuple[int, int, int]]:
        """All directed links as ``(node, port, neighbor)`` triples."""
        for node in range(self.num_nodes):
            for port in (EAST, WEST, NORTH, SOUTH):
                neighbor = self.neighbor(node, port)
                if neighbor is not None:
                    yield node, port, neighbor

    def hop_distance(self, src: int, dst: int) -> int:
        """Manhattan distance between two nodes."""
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        return abs(sx - dx) + abs(sy - dy)

    def average_hop_distance(self) -> float:
        """Mean hop distance under uniform traffic excluding self-pairs.

        Per dimension the mean |i - j| over uniform i, j is
        ``(k^2 - 1) / (3k)``; the self-pair exclusion rescales by
        ``n / (n - 1)``.
        """
        per_dimension = (self.k * self.k - 1) / (3.0 * self.k)
        n = self.num_nodes
        return 2.0 * per_dimension * n / (n - 1)

    def capacity_flits_per_node_cycle(self) -> float:
        """Uniform-traffic capacity: ``4 / k`` flits per node per cycle."""
        return 4.0 / self.k

    def nodes(self) -> List[int]:
        return list(range(self.num_nodes))

    def is_wrap_link(self, node: int, port: int) -> bool:
        """Whether traversing ``port`` from ``node`` uses a wrap link.

        Always False on a mesh (it has none)."""
        self._check_node(node)
        return False

    @property
    def has_wrap_links(self) -> bool:
        return False

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} outside 0..{self.num_nodes - 1}")


@dataclass(frozen=True)
class Torus(Mesh):
    """A k-ary 2-cube: the mesh plus wrap links closing each row/column.

    Deadlock note: rings create cyclic channel dependencies, so routers
    on a torus need virtual channels with dateline classes
    (:mod:`repro.sim.dateline`); the network builder rejects wormhole
    routers on a torus for that reason.
    """

    def neighbor(self, node: int, port: int) -> Optional[int]:
        x, y = self.coordinates(node)
        k = self.k
        if port == EAST:
            return self.node_at((x + 1) % k, y)
        if port == WEST:
            return self.node_at((x - 1) % k, y)
        if port == NORTH:
            return self.node_at(x, (y - 1) % k)
        if port == SOUTH:
            return self.node_at(x, (y + 1) % k)
        if port == LOCAL:
            return None
        raise ValueError(f"unknown port {port}")

    def is_wrap_link(self, node: int, port: int) -> bool:
        x, y = self.coordinates(node)
        k = self.k
        if port == EAST:
            return x == k - 1
        if port == WEST:
            return x == 0
        if port == NORTH:
            return y == 0
        if port == SOUTH:
            return y == k - 1
        return False

    @property
    def has_wrap_links(self) -> bool:
        return True

    def hop_distance(self, src: int, dst: int) -> int:
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        k = self.k
        step_x = min((dx - sx) % k, (sx - dx) % k)
        step_y = min((dy - sy) % k, (sy - dy) % k)
        return step_x + step_y

    def average_hop_distance(self) -> float:
        # Exact mean of the per-dimension ring distance min(d, k-d),
        # doubled for two dimensions and rescaled for self-exclusion.
        k = self.k
        ring_mean = sum(min(d, k - d) for d in range(k)) / k
        n = self.num_nodes
        return 2.0 * ring_mean * n / (n - 1)

    def capacity_flits_per_node_cycle(self) -> float:
        """Torus wrap links double the bisection: ``8 / k``."""
        return 8.0 / self.k


def make_topology(kind: str, k: int) -> Mesh:
    """Factory: ``"mesh"`` (the paper's) or ``"torus"``."""
    if kind == "mesh":
        return Mesh(k)
    if kind == "torus":
        return Torus(k)
    raise ValueError(f"unknown topology {kind!r}")
