"""Flit-level event tracing.

A :class:`Tracer` attached to a network records timestamped events as
flits move: buffer writes, switch grants, crossbar traversals, and
ejections.  Used by the timing tests to pin per-stage behaviour (e.g.
that a head flit's RC, allocation and traversal land on consecutive
cycles) and handy when debugging router changes::

    net = Network(config)
    tracer = Tracer.attach(net)
    ...
    for event in tracer.packet_events(packet_id):
        print(event)

Tracing costs one branch per event when disabled and is off by default.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Optional


class EventKind(enum.Enum):
    BUFFER_WRITE = "buffer_write"   # flit written into an input VC
    RC = "route_computed"           # head's output port computed (RC)
    VC_GRANT = "vc_grant"           # output VC allocated to the head (VA)
    SWITCH_GRANT = "switch_grant"   # switch allocated to the flit's VC
    TRAVERSAL = "traversal"         # flit crossed the crossbar (ST)
    EJECTION = "ejection"           # flit delivered to the sink


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped flit event."""

    cycle: int
    kind: EventKind
    node: int
    port: int
    vc: int
    packet_id: int
    flit_index: int

    def __str__(self) -> str:
        return (
            f"cycle {self.cycle:5d}: {self.kind.value:12s} "
            f"node {self.node:3d} port {self.port} vc {self.vc} "
            f"pkt {self.packet_id} flit {self.flit_index}"
        )


class Tracer:
    """Collects :class:`TraceEvent` records from an attached network."""

    def __init__(self, max_events: Optional[int] = None) -> None:
        self.events: List[TraceEvent] = []
        self.max_events = max_events

    # ------------------------------------------------------------------

    @classmethod
    def attach(cls, network, max_events: Optional[int] = None) -> "Tracer":
        """Create a tracer and hook it into every router and sink."""
        tracer = cls(max_events)
        # Trace events are emitted by the generic-path methods; a
        # compiled step function has those branches compiled out.
        force = getattr(network, "force_generic_step", None)
        if force is not None:
            force("trace")
        for router in network.routers:
            router.tracer = tracer
        for sink in network.sinks:
            original = sink.accept

            def accept(flit, cycle, original=original, node=sink.node):
                tracer.record(
                    cycle, EventKind.EJECTION, node, 0, flit.vcid,
                    flit.packet.packet_id, flit.index,
                )
                original(flit, cycle)

            sink.accept = accept
        return tracer

    def record(
        self, cycle: int, kind: EventKind, node: int, port: int, vc: int,
        packet_id: int, flit_index: int,
    ) -> None:
        if self.max_events is not None and len(self.events) >= self.max_events:
            return
        self.events.append(
            TraceEvent(cycle, kind, node, port, vc, packet_id, flit_index)
        )

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    def packet_events(self, packet_id: int) -> List[TraceEvent]:
        return [e for e in self.events if e.packet_id == packet_id]

    def flit_events(self, packet_id: int, flit_index: int) -> List[TraceEvent]:
        return [
            e for e in self.events
            if e.packet_id == packet_id and e.flit_index == flit_index
        ]

    def events_of_kind(self, kind: EventKind) -> List[TraceEvent]:
        return [e for e in self.events if e.kind is kind]

    def traversal_cycles(self, packet_id: int, flit_index: int) -> List[int]:
        """ST cycles of one flit, hop by hop."""
        return [
            e.cycle for e in self.flit_events(packet_id, flit_index)
            if e.kind is EventKind.TRAVERSAL
        ]

    def per_hop_latencies(self, packet_id: int, flit_index: int = 0) -> List[int]:
        """Traversal-to-traversal gaps of one flit across its path."""
        cycles = self.traversal_cycles(packet_id, flit_index)
        return [b - a for a, b in zip(cycles, cycles[1:])]

    def render(self, events: Optional[Iterable[TraceEvent]] = None) -> str:
        return "\n".join(str(e) for e in (events or self.events))
