"""Unit-latency router models (Section 5.2's "C" simulator baseline).

These routers perform routing, (VC) allocation, switch arbitration and
crossbar traversal all within a single cycle, the assumption most
published research made before this paper.  Combined with the 0-cycle
credit pipeline (a credit is sent and received in 2 cycles), they
reproduce the optimistic unit-latency results of Figure 17: a zero-load
latency of ~16 cycles on the 8x8 mesh and inflated saturation
throughput from the unrealistically fast buffer turnaround.
"""

from __future__ import annotations

from .wormhole import WormholeRouter
from .vc import VirtualChannelRouter


class SingleCycleWormholeRouter(WormholeRouter):
    """Wormhole router with RC, SA and ST collapsed into one cycle."""

    def cycle(self, cycle: int) -> None:
        # Reverse of the pipelined phase order: a flit arriving this
        # cycle routes, arbitrates and traverses before the cycle ends.
        self._rc_phase(cycle)
        self._allocation_phase(cycle)
        self._st_phase(cycle)


class SingleCycleVCRouter(VirtualChannelRouter):
    """Virtual-channel router with RC, VA, SA and ST in one cycle."""

    def _after_routing(self, ivc, cycle: int) -> None:
        super()._after_routing(ivc, cycle)
        # everything happens within the routing cycle here.
        ivc.va_ready = cycle

    def cycle(self, cycle: int) -> None:
        self._rc_phase(cycle)
        # VA before SA within the cycle so a fresh head can win an
        # output VC and the switch in the same cycle.
        self._vc_allocation(cycle)
        self._switch_allocation(cycle)
        self._st_phase(cycle)
