"""Config-specialized router step compilation (the saturation-speed path).

At wiring time the network asks :func:`compile_step` for a per-router
step function specialized to the config: the routing table is
precomputed, the port/VC loops run over the struct-of-arrays state
bitmasks instead of scanning VC objects, allocator requests are built as
pre-grouped parallel lists (``SeparableAllocator.allocate_grouped``),
and every branch serving validation, telemetry or tracing is compiled
out.  The compiled closure is bit-identical to the generic
``BaseRouter.cycle`` for the supported configs -- same state
transitions, same arbiter state evolution, same stats, same channel
sends in the same order -- which the high-load differential battery in
``tests/sim/test_fast_stepper.py`` and ``oracle_fast_vs_reference``
enforce.

Every built-in config compiles.  Beyond the separable/xy envelope:

* the maximum-matching allocator is driven through its batched
  ``allocate_grouped`` entry point (bitmask augmenting-path kernel, no
  ``Request`` objects);
* o1turn and adaptive routing use per-node route memos -- (xy, yx)
  table pair keyed on the packet's committed order, and a
  (productive ports, DOR port) table -- built lazily and interned on
  the plan (:func:`o1turn_route_tables` / :func:`adaptive_route_table`)
  and shared with the generic path, so checked mode observes memo
  corruption;
* the ``equal`` speculation ablation gets its own fused combiner
  (:func:`_make_spec_alloc_equal`): both request classes share the
  primary allocator's arbiter state, exactly as
  ``SpeculativeSwitchAllocator._allocate_equal``.

The generic path remains the executable spec and the fallback:

* attaching probes, telemetry or a tracer calls
  ``Network.force_generic_step``, clearing every compiled step so
  wrap-based instrumentation keeps intercepting the generic methods;
* a router whose step methods were monkeypatched (instance or class
  level) refuses to specialize -- :func:`compile_step` verifies each
  method against the canonical function captured at import time;
* so does a router whose allocators were proxied/subclassed (the
  validation probes wrap the allocator instances).

Plans (not closures) are cached per :func:`specialization_key`; the
closures themselves capture per-router state and are built fresh for
every router.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..dateline import class_partition, o1turn_choice
from ..routing import dimension_order_route, productive_ports, yx_route
from ..topology import LOCAL, NUM_PORTS
from .base import _ACTIVE, _ROUTING, _VC_ALLOC, BaseRouter
from .single_cycle import SingleCycleVCRouter, SingleCycleWormholeRouter
from .spec_vc import SpeculativeVCRouter
from .vc import VirtualChannelRouter
from .vct import VirtualCutThroughRouter
from .wormhole import WormholeRouter


class StepPlan:
    """A compilable (config-key, router-class, builder) triple.

    Plans are interned per :func:`specialization_key`: two configs with
    the same key share the plan object; configs with different keys
    never do (the specialization-cache tests assert both directions).

    ``cache`` interns per-node derived data shared by every router
    compiled from this plan -- today the packet-dependent route memos
    (o1turn xy/yx table pairs, adaptive productive-port tables), keyed
    ``(kind, node)``.  Networks with the same specialization key share
    the memos instead of recomputing them per router construction.
    """

    __slots__ = ("key", "router_class", "builder", "canonical", "cache")

    def __init__(self, key, router_class, builder, canonical) -> None:
        self.key = key
        self.router_class = router_class
        self.builder = builder
        self.canonical = canonical
        self.cache: Dict[Tuple, Tuple] = {}


def specialization_key(config) -> Tuple:
    """Every config field the compiled step code depends on."""
    return (
        config.router_kind.value,
        config.num_vcs,
        config.buffers_per_vc,
        config.topology,
        config.mesh_radix,
        config.routing_function,
        config.allocator_kind,
        config.arbiter_kind,
        config.speculation_priority,
        config.va_extra_cycles,
        config.packet_length,
    )


# ----------------------------------------------------------------------
# Canonical step methods, captured at import time.  compile_step refuses
# to specialize a router whose class resolves any of these names to a
# different function (class-level monkeypatch) or that shadows one on
# the instance -- the patched generic path must keep running.
# ----------------------------------------------------------------------

_BASE_STEP_METHODS = (
    "cycle",
    "_st_phase",
    "_traverse",
    "_grant_switch",
    "_release_resources",
    "_allocation_phase",
    "_rc_phase",
    "_route",
    "_route_vc",
    "_after_routing",
)
_VC_STEP_METHODS = _BASE_STEP_METHODS + (
    "_vc_allocation",
    "_switch_allocation",
    "_sa_eligible",
    "_collect_va_requests",
    "_candidate_vcs",
    "_reiterate_blocked_heads",
)


def _capture(cls, names) -> Tuple[Tuple[str, object], ...]:
    return tuple((name, getattr(cls, name)) for name in names)


_CANONICAL = {
    WormholeRouter: _capture(WormholeRouter, _BASE_STEP_METHODS),
    VirtualCutThroughRouter: _capture(
        VirtualCutThroughRouter, _BASE_STEP_METHODS
    ),
    SingleCycleWormholeRouter: _capture(
        SingleCycleWormholeRouter, _BASE_STEP_METHODS
    ),
    VirtualChannelRouter: _capture(VirtualChannelRouter, _VC_STEP_METHODS),
    SingleCycleVCRouter: _capture(SingleCycleVCRouter, _VC_STEP_METHODS),
    SpeculativeVCRouter: _capture(SpeculativeVCRouter, _VC_STEP_METHODS),
}


def _uses_canonical(router: BaseRouter, canonical) -> bool:
    cls = type(router)
    instance_dict = router.__dict__
    for name, func in canonical:
        if name in instance_dict:
            return False
        if getattr(cls, name, None) is not func:
            return False
    return True


# ----------------------------------------------------------------------
# Packet-dependent route memos.  o1turn/adaptive routing cannot use the
# static per-destination table in ``BaseRouter._route_table`` (the
# choice depends on the packet), but the packet-independent parts can
# be precomputed per node: the xy and yx route tables (o1turn picks one
# per packet) and the (productive ports, DOR port) pairs adaptive
# routing scores against live congestion.  Tables are built lazily on
# first use and interned on the step plan; the *generic* route methods
# consult the same memos (via ``BaseRouter._ensure_o1turn_tables`` /
# ``VirtualChannelRouter._ensure_adaptive_table``), which keeps the two
# paths bit-identical by construction and makes memo corruption
# observable under checked mode.
# ----------------------------------------------------------------------


def o1turn_route_tables(router: BaseRouter) -> Tuple[Tuple, Tuple]:
    """``(xy_table, yx_table)`` for this node, interned on the plan."""
    plan = plan_for(router.config)
    key = ("o1turn", router.node)
    if plan is not None:
        tables = plan.cache.get(key)
        if tables is not None:
            return tables
    mesh = router.mesh
    node = router.node
    tables = (
        # repro: hot-ok[memoized per node in the plan cache; allocates on first touch only]
        tuple(
            dimension_order_route(mesh, node, destination)
            for destination in range(mesh.num_nodes)
        ),
        # repro: hot-ok[memoized per node in the plan cache; allocates on first touch only]
        tuple(
            yx_route(mesh, node, destination)
            for destination in range(mesh.num_nodes)
        ),
    )
    if plan is not None:
        plan.cache[key] = tables
    return tables


def adaptive_route_table(router: BaseRouter) -> Tuple:
    """Per-destination ``(productive ports, DOR port)`` pairs for this
    node, interned on the plan.  ``ports[0]`` is the DOR port whenever
    two ports are productive (X is corrected first in both orders)."""
    plan = plan_for(router.config)
    key = ("adaptive", router.node)
    if plan is not None:
        table = plan.cache.get(key)
        if table is not None:
            return table
    mesh = router.mesh
    node = router.node
    table = tuple(
        (
            tuple(productive_ports(mesh, node, destination)),
            dimension_order_route(mesh, node, destination),
        )
        for destination in range(mesh.num_nodes)
    )
    if plan is not None:
        plan.cache[key] = table
    return table


def _make_candidates(router: BaseRouter):
    """Candidate-VC resolver ``cand(route, head)`` for packet-dependent
    policies (O1TurnVCs / AdaptiveEscapeVCs), or None when the static
    ``_candidate_table`` covers the policy.  Returns exactly
    ``tuple(policy.allowed_vcs(...))`` for every reachable input."""
    if router._candidate_table is not None:
        return None
    v = router.num_vcs
    if router.config.routing_function == "o1turn":
        class0, class1 = class_partition(v)
        all_vcs = class0 + class1

        def cand(route, head):
            if route == LOCAL:
                return all_vcs
            return class1 if o1turn_choice(head.packet) == "yx" else class0

        return cand

    table = adaptive_route_table(router)
    full = tuple(range(v))
    adaptive_vcs = tuple(range(1, v))

    def cand(route, head):
        if route == table[head.destination][1]:
            return full
        return adaptive_vcs

    return cand


# ----------------------------------------------------------------------
# Closure builders.  Each captures the router's struct-of-arrays views
# once; the per-cycle work then runs on flat lists and int bitmasks.
# ----------------------------------------------------------------------


def _make_grant(router: BaseRouter):
    """Inlined ``_grant_switch`` without the tracer branch."""
    credit_channels = router.credit_channels
    stats = router.stats

    def grant(port: int, vc: int, cycle: int) -> None:
        router.pending_st.append((port, vc))
        stats.sa_grants += 1
        credit_channel = credit_channels[port]
        if credit_channel is not None:
            credit_channel.send(vc, cycle)

    return grant


def _make_st(router: BaseRouter):
    """Inlined ``_st_phase`` + ``_traverse``: tracer branch and the
    duplicate-output set check compiled out; the cheap empty-VC and
    unallocated-resource asserts stay (the failure-injection tests
    expect them on either path).  Tail release stays the shared
    ``_release_resources`` (it owns the mask/port-hold bookkeeping)."""
    v = router.num_vcs
    all_ivcs = router._all_ivcs
    queues = router._ivc_queues
    ovc_flat = router._ovc_flat
    output_channels = router.output_channels
    stats = router.stats
    release = router._release_resources

    def st(cycle: int) -> None:
        pending = router.pending_st
        if not pending:
            return
        router.pending_st = []
        for port, vc in pending:
            flat = port * v + vc
            ivc = all_ivcs[flat]
            queue = queues[flat]
            if not queue:
                raise AssertionError("switch granted to an empty input VC")
            out_port = ivc.route
            out_vc = ivc.out_vc
            if out_port is None or out_vc is None:
                raise AssertionError(
                    "switch granted before resources allocated"
                )
            flit = queue.popleft()
            ovc = ovc_flat[out_port * v + out_vc]
            ovc.credits.consume()
            flit.vcid = out_vc
            output_channels[out_port].send(flit, cycle)
            stats.flits_forwarded += 1
            if flit.is_tail:
                release(ivc, ovc, cycle)

    return st


def _make_rc(router: BaseRouter, *, vc_family: bool, single_cycle: bool):
    """Inlined ``_rc_phase`` iterating the ROUTING bitmask with the
    precomputed routing table (xy/yx only -- plan_for guarantees it)."""
    all_ivcs = router._all_ivcs
    queues = router._ivc_queues
    route_table = router._route_table
    stats = router.stats
    va_delay = 0 if single_cycle else 1 + router.config.va_extra_cycles

    if vc_family:

        def rc(cycle: int) -> None:
            m = router._routing_mask
            routed = 0
            moved = 0
            while m:
                low = m & -m
                m -= low
                flat = low.bit_length() - 1
                ivc = all_ivcs[flat]
                if ivc.routing_ready > cycle:
                    continue
                ivc.route = route_table[queues[flat][0].destination]
                ivc.state = _VC_ALLOC
                ivc.va_ready = cycle + va_delay
                routed += 1
                moved |= low
            if routed:
                stats.packets_routed += routed
                router._routing_mask &= ~moved
                router._va_mask |= moved

    else:

        def rc(cycle: int) -> None:
            m = router._routing_mask
            routed = 0
            moved = 0
            while m:
                low = m & -m
                m -= low
                flat = low.bit_length() - 1
                ivc = all_ivcs[flat]
                if ivc.routing_ready > cycle:
                    continue
                ivc.route = route_table[queues[flat][0].destination]
                ivc.state = _ACTIVE
                routed += 1
                moved |= low
            if routed:
                stats.packets_routed += routed
                router._routing_mask &= ~moved
                router._active_mask |= moved

    return rc


def _make_rc_o1turn(router: BaseRouter, *, single_cycle: bool):
    """``_rc_phase`` for o1turn routing: the packet's committed
    dimension order picks between the memoized xy and yx tables
    (o1turn is VC-family-only, so heads always go to VC_ALLOC)."""
    all_ivcs = router._all_ivcs
    queues = router._ivc_queues
    stats = router.stats
    va_delay = 0 if single_cycle else 1 + router.config.va_extra_cycles
    xy_table, yx_table = router._ensure_o1turn_tables()

    def rc(cycle: int) -> None:
        m = router._routing_mask
        routed = 0
        moved = 0
        while m:
            low = m & -m
            m -= low
            flat = low.bit_length() - 1
            ivc = all_ivcs[flat]
            if ivc.routing_ready > cycle:
                continue
            packet = queues[flat][0].packet
            table = yx_table if o1turn_choice(packet) == "yx" else xy_table
            ivc.route = table[packet.destination]
            ivc.state = _VC_ALLOC
            ivc.va_ready = cycle + va_delay
            routed += 1
            moved |= low
        if routed:
            stats.packets_routed += routed
            router._routing_mask &= ~moved
            router._va_mask |= moved

    return rc


def _make_rc_adaptive(router: BaseRouter, *, single_cycle: bool):
    """``_rc_phase`` + ``VirtualChannelRouter._route_vc`` for minimal
    adaptive routing: the (productive ports, DOR port) pair comes from
    the memo; the congestion score (free *and* credited permitted VCs
    per port) is computed inline over the flat output-VC arrays.  When
    two ports are productive, ``ports[0]`` is the DOR port (escape VC
    permitted); the tie-break ``max(ports, key=(freedom, p == dor))``
    reduces to "the non-DOR port wins only on a strictly higher score"
    since ``max`` keeps the first maximum."""
    v = router.num_vcs
    all_ivcs = router._all_ivcs
    queues = router._ivc_queues
    ovc_flat = router._ovc_flat
    ovc_credits = router._ovc_credits
    stats = router.stats
    va_delay = 0 if single_cycle else 1 + router.config.va_extra_cycles
    table = router._ensure_adaptive_table()
    fallback = type(router).ADAPTIVE_REROUTE_FALLBACK

    def rc(cycle: int) -> None:
        m = router._routing_mask
        routed = 0
        moved = 0
        while m:
            low = m & -m
            m -= low
            flat = low.bit_length() - 1
            ivc = all_ivcs[flat]
            if ivc.routing_ready > cycle:
                continue
            ports, dor_port = table[queues[flat][0].destination]
            if len(ports) == 1 or ivc.reroute_count >= fallback:
                route = dor_port
            else:
                base = ports[0] * v
                f0 = 0
                for c in range(v):
                    if (
                        ovc_flat[base + c].held_by is None
                        and ovc_credits[base + c]._credits > 0
                    ):
                        f0 += 1
                base = ports[1] * v
                f1 = 0
                for c in range(1, v):
                    if (
                        ovc_flat[base + c].held_by is None
                        and ovc_credits[base + c]._credits > 0
                    ):
                        f1 += 1
                route = ports[1] if f1 > f0 else ports[0]
            ivc.route = route
            ivc.state = _VC_ALLOC
            ivc.va_ready = cycle + va_delay
            routed += 1
            moved |= low
        if routed:
            stats.packets_routed += routed
            router._routing_mask &= ~moved
            router._va_mask |= moved

    return rc


def _make_vc_rc(router: BaseRouter, *, single_cycle: bool):
    """RC builder dispatch for the VC family, by routing function."""
    name = router.config.routing_function
    if name == "o1turn":
        return _make_rc_o1turn(router, single_cycle=single_cycle)
    if name == "adaptive":
        return _make_rc_adaptive(router, single_cycle=single_cycle)
    return _make_rc(router, vc_family=True, single_cycle=single_cycle)


def _make_reiterate(router: BaseRouter):
    """Inlined ``_reiterate_blocked_heads`` (adaptive routing on the
    plain 4-stage VC router only -- the speculative router's allocation
    phase never reiterates, and the single-cycle router's phase order
    has no reiterate step).  No ``va_ready`` gate, exactly like the
    generic method: a head still waiting out the VA delay may reroute."""
    v = router.num_vcs
    all_ivcs = router._all_ivcs
    queues = router._ivc_queues
    ovc_flat = router._ovc_flat
    stats = router.stats
    table = router._ensure_adaptive_table()

    def reiterate(cycle: int) -> None:
        m = router._va_mask
        moved = 0
        while m:
            low = m & -m
            m -= low
            flat = low.bit_length() - 1
            ivc = all_ivcs[flat]
            route = ivc.route
            if route is None:
                continue
            base = route * v
            dor_port = table[queues[flat][0].destination][1]
            start = 0 if route == dor_port else 1
            free = False
            for c in range(start, v):
                if ovc_flat[base + c].held_by is None:
                    free = True
                    break
            if free:
                continue
            ivc.state = _ROUTING
            ivc.routing_ready = cycle + 1
            ivc.route = None
            ivc.reroute_count += 1
            stats.reroutes += 1
            moved |= low
        if moved:
            router._va_mask &= ~moved
            router._routing_mask |= moved

    return reiterate


def _make_wormhole_alloc(router: BaseRouter, grant, *, vct: bool):
    """Inlined wormhole/VCT ``_allocation_phase``.

    The reference's ``held_outputs`` busy filter is dropped: free-port
    requests never target a held output (checked right here), so the
    filter -- and the singleton fast path's busy test -- are no-ops.
    """
    all_ivcs = router._all_ivcs
    queues = router._ivc_queues
    ovc_credits = router._ovc_credits
    stats = router.stats
    port_held_by = router.port_held_by
    arbiter = router._switch_arbiter
    member0 = (0,)

    def alloc(cycle: int) -> None:
        held_inputs = 0
        for out_port in range(NUM_PORTS):
            in_port = port_held_by[out_port]
            if in_port is None:
                continue
            held_inputs |= 1 << in_port
            if queues[in_port]:
                if ovc_credits[out_port]._credits > 0:
                    grant(in_port, 0, cycle)
                else:
                    stats.credits_stalled += 1

        m = router._active_mask & ~held_inputs
        groups = []
        resources = []
        while m:
            low = m & -m
            m -= low
            in_port = low.bit_length() - 1
            route = all_ivcs[in_port].route
            if port_held_by[route] is not None:
                continue
            credits = ovc_credits[route]
            if vct:
                if credits._credits < queues[in_port][0].packet.length:
                    stats.credits_stalled += 1
                    continue
            elif credits._credits <= 0:
                stats.credits_stalled += 1
                continue
            groups.append(in_port)
            resources.append((route,))

        if groups:
            for won in arbiter.allocate_grouped(
                groups, [member0] * len(groups), resources
            ):
                in_port = won.group
                all_ivcs[in_port].out_vc = 0
                port_held_by[won.resource] = in_port
                grant(in_port, 0, cycle)

    return alloc


def _make_vc_sa(router: BaseRouter, grant):
    """Inlined ``_switch_allocation`` over the ACTIVE bitmask with
    pre-grouped (port-contiguous, flat-ascending) requests."""
    v = router.num_vcs
    all_ivcs = router._all_ivcs
    queues = router._ivc_queues
    ovc_credits = router._ovc_credits
    stats = router.stats
    allocator = router._switch_allocator
    flat_port = tuple(flat // v for flat in range(NUM_PORTS * v))
    flat_vc = tuple(flat % v for flat in range(NUM_PORTS * v))

    def sa(cycle: int) -> None:
        m = router._active_mask
        groups = []
        members_lists = []
        resources_lists = []
        last_port = -1
        while m:
            low = m & -m
            m -= low
            flat = low.bit_length() - 1
            if not queues[flat]:
                continue
            ivc = all_ivcs[flat]
            route = ivc.route
            if ovc_credits[route * v + ivc.out_vc]._credits <= 0:
                stats.credits_stalled += 1
                continue
            port = flat_port[flat]
            if port == last_port:
                members_lists[-1].append(flat_vc[flat])
                resources_lists[-1].append(route)
            else:
                last_port = port
                groups.append(port)
                # repro: hot-ok[per-request grant payload; the allocator protocol takes list-of-lists]
                members_lists.append([flat_vc[flat]])
                # repro: hot-ok[per-request grant payload; the allocator protocol takes list-of-lists]
                resources_lists.append([route])
        if groups:
            for won in allocator.allocate_grouped(
                groups, members_lists, resources_lists
            ):
                grant(won.group, won.member, cycle)

    return sa


def _make_vc_va(router: BaseRouter, cand=None):
    """Inlined ``_vc_allocation`` + ``_collect_va_requests`` over the
    VC_ALLOC bitmask and the precomputed candidate-VC table, with the
    VC allocator's two separable stages fused in.

    Each requestor group is one input VC, so stage 1 runs during
    collection (group order is ascending flat order either way); the
    winning candidate's resource is ``route * v + winner`` by
    construction, so no member-to-resource lookup survives inlining.

    ``cand`` (from :func:`_make_candidates`) resolves candidate VCs for
    packet-dependent policies; None means the static table applies.
    """
    v = router.num_vcs
    all_ivcs = router._all_ivcs
    queues = router._ivc_queues
    ovc_flat = router._ovc_flat
    allocator = router._vc_allocator
    st1 = allocator._stage1
    st2 = allocator._stage2
    matrix = allocator._matrix
    candidate_table = router._candidate_table
    flat_pairs = tuple(divmod(flat, v) for flat in range(NUM_PORTS * v))

    def va(cycle: int) -> None:
        # Collection + stage 1: per VC_ALLOC head, arbitrate among the
        # currently free candidate output VCs.
        m = router._va_mask
        sur_g = []
        sur_m = []
        sur_r = []
        while m:
            low = m & -m
            m -= low
            flat = low.bit_length() - 1
            ivc = all_ivcs[flat]
            if ivc.va_ready > cycle:
                continue
            route = ivc.route
            base = route * v
            if candidate_table is not None:
                cands = candidate_table[flat][route]
            else:
                cands = cand(route, queues[flat][0])
            members = None
            for candidate in cands:
                if ovc_flat[base + candidate].held_by is None:
                    if members is None:
                        # repro: hot-ok[per-request grant payload; the allocator protocol takes list-of-lists]
                        members = [candidate]
                    else:
                        members.append(candidate)
            if members is None:
                continue
            arb = st1[flat]
            if len(members) == 1:
                w = members[0]
                if matrix:
                    arb._state = (arb._state | arb._col[w]) & arb._row_keep[w]
                else:
                    arb.arbitrate(members)
            else:
                w = arb.arbitrate(members)
            sur_g.append(flat)
            sur_m.append(w)
            sur_r.append(base + w)

        # Stage 2: per output VC, pick one head; the winner takes the
        # VC and turns ACTIVE immediately.
        count = len(sur_g)
        if count == 1:
            g = sur_g[0]
            res = sur_r[0]
            arb = st2[res]
            if matrix:
                arb._state = (arb._state | arb._col[g]) & arb._row_keep[g]
            else:
                arb.arbitrate((g,))
            ivc = all_ivcs[g]
            ovc_flat[res].held_by = flat_pairs[g]
            ivc.out_vc = sur_m[0]
            ivc.state = _ACTIVE
            router._va_mask &= ~(1 << g)
            router._active_mask |= 1 << g
        elif count:
            by_resource = {}
            for k in range(count):
                # repro: hot-ok[per-cycle conflict grouping; bounded by surviving requests]
                by_resource.setdefault(sur_r[k], []).append(k)
            moved = 0
            for res, idxs in by_resource.items():
                arb = st2[res]
                if len(idxs) == 1:
                    k = idxs[0]
                    g = sur_g[k]
                    if matrix:
                        arb._state = (
                            arb._state | arb._col[g]
                        ) & arb._row_keep[g]
                    else:
                        arb.arbitrate((g,))
                else:
                    # repro: hot-ok[bounded same-cycle scratch in the fused combiner]
                    g = arb.arbitrate([sur_g[k] for k in idxs])
                    for k in idxs:
                        if sur_g[k] == g:
                            break
                ivc = all_ivcs[g]
                ovc_flat[res].held_by = flat_pairs[g]
                ivc.out_vc = sur_m[k]
                ivc.state = _ACTIVE
                moved |= 1 << g
            router._va_mask &= ~moved
            router._active_mask |= moved

    return va


def _make_vc_va_grouped(router: BaseRouter, cand=None):
    """``_vc_allocation`` for the maximum-matching VC allocator: build
    the matcher's ``(adjacency, chooser)`` bitmasks directly over the
    VC_ALLOC heads (one group per head, one adjacency bit per free
    candidate VC, flat-ascending -- exactly the generic
    ``_collect_va_requests`` order) and run the shared ``_match``
    kernel.  These are the same masks ``allocate_grouped`` would have
    derived -- each head->candidate edge is unique, so the chooser
    never needs the rotating rank comparison -- minus the grouped-list
    round trip.  Grants apply in return order, as the generic loop
    does."""
    v = router.num_vcs
    all_ivcs = router._all_ivcs
    queues = router._ivc_queues
    ovc_flat = router._ovc_flat
    allocator = router._vc_allocator
    match = allocator._match
    nr = allocator.num_resources
    candidate_table = router._candidate_table
    flat_pairs = tuple(divmod(flat, v) for flat in range(NUM_PORTS * v))

    def va(cycle: int) -> None:
        m = router._va_mask
        adjacency = {}
        chooser = {}
        while m:
            low = m & -m
            m -= low
            flat = low.bit_length() - 1
            ivc = all_ivcs[flat]
            if ivc.va_ready > cycle:
                continue
            route = ivc.route
            base = route * v
            if candidate_table is not None:
                cands = candidate_table[flat][route]
            else:
                cands = cand(route, queues[flat][0])
            mask = 0
            key_base = flat * nr
            for candidate in cands:
                res = base + candidate
                if ovc_flat[res].held_by is None:
                    mask |= 1 << res
                    chooser[key_base + res] = candidate
            if mask:
                adjacency[flat] = mask
        if not adjacency:
            return
        moved = 0
        for won in match(adjacency, chooser):
            flat = won.group
            ivc = all_ivcs[flat]
            ovc_flat[won.resource].held_by = flat_pairs[flat]
            ivc.out_vc = won.member
            ivc.state = _ACTIVE
            moved |= 1 << flat
        router._va_mask &= ~moved
        router._active_mask |= moved

    return va


def _make_spec_alloc(router: BaseRouter, cand=None):
    """Inlined speculative ``_allocation_phase`` + ``_vc_allocation``
    with both separable allocators fused in (conservative priority;
    the ``equal`` ablation has its own fused combiner, and the
    maximum-matching allocator the batched-kernel variant).

    The arbitration order and priority-state evolution are exactly
    ``SpeculativeSwitchAllocator.allocate_grouped``'s: non-speculative
    stage 1 per input port in request order, stage 2 per output port in
    survivor order (grants applied as each stage-2 winner is decided --
    the batched path's grant order), then the speculative stages with
    non-speculatively taken outputs masked out before stage 1 and taken
    inputs filtered at combine time.  Fusing the allocators in drops
    the per-cycle ``Grant`` tuples, the taken-output set/sort, and the
    busy re-filter list churn that dominate the batched calls.

    VC allocation is fused into the same scan: the reference walks the
    VC_ALLOC heads twice (speculative request collection, then VA
    request collection) with identical candidate scans, and nothing
    between the walks changes ``held_by`` or ``va_ready``.  The two
    allocators' arbiter states are disjoint, so running VA stage 1
    during the shared scan leaves every arbitration input unchanged.
    """
    v = router.num_vcs
    all_ivcs = router._all_ivcs
    queues = router._ivc_queues
    ovc_flat = router._ovc_flat
    ovc_credits = router._ovc_credits
    stats = router.stats
    credit_channels = router.credit_channels
    allocator = router._spec_switch_allocator
    ns1 = allocator._nonspec._stage1
    ns2 = allocator._nonspec._stage2
    sp1 = allocator._spec._stage1
    sp2 = allocator._spec._stage2
    va1 = router._vc_allocator._stage1
    va2 = router._vc_allocator._stage2
    matrix = allocator._nonspec._matrix
    candidate_table = router._candidate_table
    flat_port = tuple(flat // v for flat in range(NUM_PORTS * v))
    flat_vc = tuple(flat % v for flat in range(NUM_PORTS * v))
    flat_pairs = tuple(divmod(flat, v) for flat in range(NUM_PORTS * v))

    def alloc(cycle: int) -> None:
        pending = router.pending_st

        # Non-speculative requests from ACTIVE VCs, flat-ascending
        # (so per-port runs are contiguous), as parallel flat arrays.
        m = router._active_mask
        r_groups = []
        r_members = []
        r_resources = []
        while m:
            low = m & -m
            m -= low
            flat = low.bit_length() - 1
            if not queues[flat]:
                continue
            ivc = all_ivcs[flat]
            route = ivc.route
            if ovc_credits[route * v + ivc.out_vc]._credits <= 0:
                stats.credits_stalled += 1
                continue
            r_groups.append(flat_port[flat])
            r_members.append(flat_vc[flat])
            r_resources.append(route)

        # Non-speculative stage 1: per input port, pick one VC.
        sur_g = []
        sur_m = []
        sur_r = []
        i = 0
        n = len(r_groups)
        while i < n:
            g = r_groups[i]
            j = i + 1
            while j < n and r_groups[j] == g:
                j += 1
            arb = ns1[g]
            if j - i == 1:
                w = r_members[i]
                if matrix:
                    arb._state = (arb._state | arb._col[w]) & arb._row_keep[w]
                else:
                    arb.arbitrate((w,))
                res = r_resources[i]
            else:
                mem = r_members[i:j]
                w = arb.arbitrate(mem)
                res = r_resources[i + mem.index(w)]
            sur_g.append(g)
            sur_m.append(w)
            sur_r.append(res)
            i = j

        # Non-speculative stage 2: per output port, pick one input;
        # apply the grant (pending ST + credit) as it is decided.
        taken_in = 0
        taken_out = 0
        ns_count = len(sur_g)
        if ns_count == 1:
            g = sur_g[0]
            res = sur_r[0]
            arb = ns2[res]
            if matrix:
                arb._state = (arb._state | arb._col[g]) & arb._row_keep[g]
            else:
                arb.arbitrate((g,))
            w = sur_m[0]
            taken_in = 1 << g
            taken_out = 1 << res
            pending.append((g, w))
            stats.sa_grants += 1
            credit_channel = credit_channels[g]
            if credit_channel is not None:
                credit_channel.send(w, cycle)
        elif ns_count:
            by_resource = {}
            for k in range(ns_count):
                # repro: hot-ok[per-cycle conflict grouping; bounded by surviving requests]
                by_resource.setdefault(sur_r[k], []).append(k)
            for res, idxs in by_resource.items():
                arb = ns2[res]
                if len(idxs) == 1:
                    k = idxs[0]
                    g = sur_g[k]
                    if matrix:
                        arb._state = (
                            arb._state | arb._col[g]
                        ) & arb._row_keep[g]
                    else:
                        arb.arbitrate((g,))
                else:
                    # repro: hot-ok[bounded same-cycle scratch in the fused combiner]
                    g = arb.arbitrate([sur_g[k] for k in idxs])
                    for k in idxs:
                        if sur_g[k] == g:
                            break
                w = sur_m[k]
                taken_in |= 1 << g
                taken_out |= 1 << res
                pending.append((g, w))
                stats.sa_grants += 1
                credit_channel = credit_channels[g]
                if credit_channel is not None:
                    credit_channel.send(w, cycle)

        # One scan of the VC_ALLOC heads serves both allocators: per
        # eligible head, arbitrate VA stage 1 among its free candidate
        # VCs, and (if its output was not taken non-speculatively --
        # the batched busy filter) post its speculative switch request.
        m = router._va_mask
        va_g = []
        va_m = []
        va_r = []
        r_groups = []
        r_members = []
        r_resources = []
        while m:
            low = m & -m
            m -= low
            flat = low.bit_length() - 1
            ivc = all_ivcs[flat]
            if ivc.va_ready > cycle:
                continue
            route = ivc.route
            base = route * v
            if candidate_table is not None:
                cands = candidate_table[flat][route]
            else:
                cands = cand(route, queues[flat][0])
            members = None
            for candidate in cands:
                if ovc_flat[base + candidate].held_by is None:
                    if members is None:
                        # repro: hot-ok[per-request grant payload; the allocator protocol takes list-of-lists]
                        members = [candidate]
                    else:
                        members.append(candidate)
            if members is None:
                continue
            arb = va1[flat]
            if len(members) == 1:
                w = members[0]
                if matrix:
                    arb._state = (arb._state | arb._col[w]) & arb._row_keep[w]
                else:
                    arb.arbitrate(members)
            else:
                w = arb.arbitrate(members)
            va_g.append(flat)
            va_m.append(w)
            va_r.append(base + w)
            if taken_out >> route & 1:
                continue
            r_groups.append(flat_port[flat])
            r_members.append(flat_vc[flat])
            r_resources.append(route)

        # Speculative stage 1.
        sur_g = []
        sur_m = []
        sur_r = []
        i = 0
        sn = len(r_groups)
        while i < sn:
            g = r_groups[i]
            j = i + 1
            while j < sn and r_groups[j] == g:
                j += 1
            arb = sp1[g]
            if j - i == 1:
                w = r_members[i]
                if matrix:
                    arb._state = (arb._state | arb._col[w]) & arb._row_keep[w]
                else:
                    arb.arbitrate((w,))
                res = r_resources[i]
            else:
                mem = r_members[i:j]
                w = arb.arbitrate(mem)
                res = r_resources[i + mem.index(w)]
            sur_g.append(g)
            sur_m.append(w)
            sur_r.append(res)
            i = j

        # Speculative stage 2: winners are held until after VA -- the
        # combiner needs to see whether each speculation won its VC.
        sp_g = []
        sp_m = []
        sp_count = len(sur_g)
        if sp_count == 1:
            g = sur_g[0]
            res = sur_r[0]
            arb = sp2[res]
            if matrix:
                arb._state = (arb._state | arb._col[g]) & arb._row_keep[g]
            else:
                arb.arbitrate((g,))
            sp_g.append(g)
            sp_m.append(sur_m[0])
        elif sp_count:
            by_resource = {}
            for k in range(sp_count):
                # repro: hot-ok[per-cycle conflict grouping; bounded by surviving requests]
                by_resource.setdefault(sur_r[k], []).append(k)
            for res, idxs in by_resource.items():
                arb = sp2[res]
                if len(idxs) == 1:
                    k = idxs[0]
                    g = sur_g[k]
                    if matrix:
                        arb._state = (
                            arb._state | arb._col[g]
                        ) & arb._row_keep[g]
                    else:
                        arb.arbitrate((g,))
                else:
                    # repro: hot-ok[bounded same-cycle scratch in the fused combiner]
                    g = arb.arbitrate([sur_g[k] for k in idxs])
                    for k in idxs:
                        if sur_g[k] == g:
                            break
                sp_g.append(g)
                sp_m.append(sur_m[k])

        # VC allocation stage 2: per output VC, pick one head; winners
        # take their VC and turn ACTIVE before the combiner checks
        # speculation outcomes, exactly as the reference's VA phase.
        count = len(va_g)
        if count == 1:
            g = va_g[0]
            res = va_r[0]
            arb = va2[res]
            if matrix:
                arb._state = (arb._state | arb._col[g]) & arb._row_keep[g]
            else:
                arb.arbitrate((g,))
            ivc = all_ivcs[g]
            ovc_flat[res].held_by = flat_pairs[g]
            ivc.out_vc = va_m[0]
            ivc.state = _ACTIVE
            router._va_mask &= ~(1 << g)
            router._active_mask |= 1 << g
        elif count:
            by_resource = {}
            for k in range(count):
                # repro: hot-ok[per-cycle conflict grouping; bounded by surviving requests]
                by_resource.setdefault(va_r[k], []).append(k)
            moved = 0
            for res, idxs in by_resource.items():
                arb = va2[res]
                if len(idxs) == 1:
                    k = idxs[0]
                    g = va_g[k]
                    if matrix:
                        arb._state = (
                            arb._state | arb._col[g]
                        ) & arb._row_keep[g]
                    else:
                        arb.arbitrate((g,))
                else:
                    # repro: hot-ok[bounded same-cycle scratch in the fused combiner]
                    g = arb.arbitrate([va_g[k] for k in idxs])
                    for k in idxs:
                        if va_g[k] == g:
                            break
                ivc = all_ivcs[g]
                ovc_flat[res].held_by = flat_pairs[g]
                ivc.out_vc = va_m[k]
                ivc.state = _ACTIVE
                moved |= 1 << g
            router._va_mask &= ~moved
            router._active_mask |= moved

        # Combine: non-speculative grants win absolutely -- an input
        # port claimed non-speculatively drops its speculative grant
        # before it is counted (the batched ``surviving`` filter).
        for k in range(len(sp_g)):
            g = sp_g[k]
            if taken_in >> g & 1:
                continue
            stats.spec_grants += 1
            w = sp_m[k]
            ivc = all_ivcs[g * v + w]
            if ivc.state is not _ACTIVE:
                stats.spec_wasted += 1  # lost the VC allocation
                continue
            if ovc_credits[ivc.route * v + ivc.out_vc]._credits <= 0:
                stats.spec_wasted += 1  # won a VC without a credit
                continue
            pending.append((g, w))
            stats.sa_grants += 1
            credit_channel = credit_channels[g]
            if credit_channel is not None:
                credit_channel.send(w, cycle)

    return alloc


def _make_spec_alloc_equal(router: BaseRouter, cand=None):
    """Speculative ``_allocation_phase`` for the ``equal``-priority
    ablation (separable allocator kind): speculative and
    non-speculative stages share one arbiter state.

    Mirrors ``SpeculativeSwitchAllocator._allocate_equal`` exactly: the
    two request streams merge into one grouped call on the *primary*
    separable allocator (groups in first-appearance order over the
    nonspec-then-spec concatenation, each port's members nonspec
    first), and grants are classified back by requestor -- an input VC
    is in exactly one state per cycle, so a flat-index bitmask of the
    speculative bidders is an exact key.  Non-speculative grants apply
    before VC allocation runs; speculative grants go through the usual
    combiner checks (won the VC?  credit available?) afterwards, as in
    the generic phase.
    """
    v = router.num_vcs
    all_ivcs = router._all_ivcs
    queues = router._ivc_queues
    ovc_flat = router._ovc_flat
    ovc_credits = router._ovc_credits
    stats = router.stats
    credit_channels = router.credit_channels
    # Equal priority funnels every request through the primary
    # allocator; the secondary's arbiter state never evolves.
    allocator = router._spec_switch_allocator._nonspec
    va = _make_vc_va(router, cand)
    candidate_table = router._candidate_table
    flat_port = tuple(flat // v for flat in range(NUM_PORTS * v))
    flat_vc = tuple(flat % v for flat in range(NUM_PORTS * v))

    def alloc(cycle: int) -> None:
        pending = router.pending_st

        # Non-speculative requests from ACTIVE VCs, one grouped list
        # per input port (flat-ascending keeps ports contiguous).
        port_index = [-1] * NUM_PORTS
        groups = []
        members_lists = []
        resources_lists = []
        m = router._active_mask
        while m:
            low = m & -m
            m -= low
            flat = low.bit_length() - 1
            if not queues[flat]:
                continue
            ivc = all_ivcs[flat]
            route = ivc.route
            if ovc_credits[route * v + ivc.out_vc]._credits <= 0:
                stats.credits_stalled += 1
                continue
            g = flat_port[flat]
            idx = port_index[g]
            if idx < 0:
                port_index[g] = len(groups)
                groups.append(g)
                # repro: hot-ok[per-request grant payload; the allocator protocol takes list-of-lists]
                members_lists.append([flat_vc[flat]])
                # repro: hot-ok[per-request grant payload; the allocator protocol takes list-of-lists]
                resources_lists.append([route])
            else:
                members_lists[idx].append(flat_vc[flat])
                resources_lists[idx].append(route)

        # Speculative requests from eligible VC_ALLOC heads append to
        # the same merged structure (nonspec-first within each port).
        spec_flat_mask = 0
        m = router._va_mask
        while m:
            low = m & -m
            m -= low
            flat = low.bit_length() - 1
            ivc = all_ivcs[flat]
            if ivc.va_ready > cycle:
                continue
            route = ivc.route
            base = route * v
            if candidate_table is not None:
                cands = candidate_table[flat][route]
            else:
                cands = cand(route, queues[flat][0])
            for candidate in cands:
                if ovc_flat[base + candidate].held_by is None:
                    break
            else:
                continue  # no free candidate: no speculative bid
            g = flat_port[flat]
            idx = port_index[g]
            if idx < 0:
                port_index[g] = len(groups)
                groups.append(g)
                # repro: hot-ok[per-request grant payload; the allocator protocol takes list-of-lists]
                members_lists.append([flat_vc[flat]])
                # repro: hot-ok[per-request grant payload; the allocator protocol takes list-of-lists]
                resources_lists.append([route])
            else:
                members_lists[idx].append(flat_vc[flat])
                resources_lists[idx].append(route)
            spec_flat_mask |= 1 << flat

        # One shared-state allocation; non-speculative winners take the
        # switch immediately, speculative winners wait for the combiner.
        sp_g = []
        sp_m = []
        if groups:
            for won in allocator.allocate_grouped(
                groups, members_lists, resources_lists
            ):
                g = won.group
                w = won.member
                if spec_flat_mask >> (g * v + w) & 1:
                    sp_g.append(g)
                    sp_m.append(w)
                    continue
                pending.append((g, w))
                stats.sa_grants += 1
                credit_channel = credit_channels[g]
                if credit_channel is not None:
                    credit_channel.send(w, cycle)

        # VC allocation runs in parallel with switch allocation.
        va(cycle)

        # Combine: a speculative grant is useful only with a VC + credit.
        for k in range(len(sp_g)):
            g = sp_g[k]
            w = sp_m[k]
            stats.spec_grants += 1
            ivc = all_ivcs[g * v + w]
            if ivc.state is not _ACTIVE or ivc.out_vc is None:
                stats.spec_wasted += 1  # lost the VC allocation
                continue
            if ovc_credits[ivc.route * v + ivc.out_vc]._credits <= 0:
                stats.spec_wasted += 1  # won a VC without a credit
                continue
            pending.append((g, w))
            stats.sa_grants += 1
            credit_channel = credit_channels[g]
            if credit_channel is not None:
                credit_channel.send(w, cycle)

    return alloc


def _make_spec_alloc_grouped(router: BaseRouter, cand=None):
    """Speculative ``_allocation_phase`` for the maximum-matching
    allocator kind.

    Conservative priority builds the matcher's ``(adjacency,
    chooser)`` bitmasks directly during the mask scans and runs both
    ``_match`` kernels inline -- the same masks and rotation cadence
    ``SpeculativeSwitchAllocator.allocate_grouped`` produces (scan
    order is flat-ascending, i.e. the grouped lists' first-appearance
    order; the busy filter drops non-speculatively taken outputs from
    the speculative adjacency *after* the chooser is built, which is
    equivalent because busy edges are never granted and a group whose
    mask empties is removed before the rotation-ordered group walk).
    The ``equal`` ablation keeps the grouped-list call -- the merged
    single allocation on the shared allocator is priority semantics,
    not list plumbing, so it stays in one place.  VC allocation goes
    through the batched matcher either way."""
    v = router.num_vcs
    all_ivcs = router._all_ivcs
    queues = router._ivc_queues
    ovc_flat = router._ovc_flat
    ovc_credits = router._ovc_credits
    stats = router.stats
    credit_channels = router.credit_channels
    allocator = router._spec_switch_allocator
    va = _make_vc_va_grouped(router, cand)
    candidate_table = router._candidate_table
    flat_port = tuple(flat // v for flat in range(NUM_PORTS * v))
    flat_vc = tuple(flat % v for flat in range(NUM_PORTS * v))

    if allocator.priority != "equal":
        nonspec = allocator._nonspec
        spec = allocator._spec
        ns_match = nonspec._match
        sp_match = spec._match
        mpg = nonspec.members_per_group
        nr = nonspec.num_resources

        def alloc(cycle: int) -> None:
            pending = router.pending_st

            # Non-speculative adjacency from the ACTIVE mask.
            ns_adj = {}
            ns_choose = {}
            pivot = nonspec._rotation % mpg
            m = router._active_mask
            while m:
                low = m & -m
                m -= low
                flat = low.bit_length() - 1
                if not queues[flat]:
                    continue
                ivc = all_ivcs[flat]
                route = ivc.route
                if ovc_credits[route * v + ivc.out_vc]._credits <= 0:
                    stats.credits_stalled += 1
                    continue
                port = flat_port[flat]
                w = flat_vc[flat]
                ns_adj[port] = ns_adj.get(port, 0) | (1 << route)
                key = port * nr + route
                held = ns_choose.get(key)
                if held is None or (w - pivot) % mpg < (held - pivot) % mpg:
                    ns_choose[key] = w

            # Speculative adjacency from the eligible VC_ALLOC heads
            # (a head bids iff some permitted candidate VC is free).
            sp_adj = {}
            sp_choose = {}
            sp_pivot = spec._rotation % mpg
            m = router._va_mask
            while m:
                low = m & -m
                m -= low
                flat = low.bit_length() - 1
                ivc = all_ivcs[flat]
                if ivc.va_ready > cycle:
                    continue
                route = ivc.route
                base = route * v
                if candidate_table is not None:
                    cands = candidate_table[flat][route]
                else:
                    cands = cand(route, queues[flat][0])
                for candidate in cands:
                    if ovc_flat[base + candidate].held_by is None:
                        break
                else:
                    continue
                port = flat_port[flat]
                w = flat_vc[flat]
                sp_adj[port] = sp_adj.get(port, 0) | (1 << route)
                key = port * nr + route
                held = sp_choose.get(key)
                if (held is None
                        or (w - sp_pivot) % mpg < (held - sp_pivot) % mpg):
                    sp_choose[key] = w

            if ns_adj:
                ns_grants = ns_match(ns_adj, ns_choose)
            else:
                ns_grants = ()
            taken_out = 0
            taken_in = 0
            for grant in ns_grants:
                g = grant.group
                w = grant.member
                taken_out |= 1 << grant.resource
                taken_in |= 1 << g
                pending.append((g, w))
                stats.sa_grants += 1
                credit_channel = credit_channels[g]
                if credit_channel is not None:
                    credit_channel.send(w, cycle)

            sp_grants = ()
            if sp_adj:
                if taken_out:
                    for port in list(sp_adj):
                        masked = sp_adj[port] & ~taken_out
                        if masked:
                            sp_adj[port] = masked
                        else:
                            del sp_adj[port]
                sp_grants = sp_match(sp_adj, sp_choose)

            # VC allocation runs in parallel with switch allocation.
            va(cycle)

            # Combine: a surviving speculative grant is useful only
            # with a VC + credit.
            for grant in sp_grants:
                g = grant.group
                if taken_in >> g & 1:
                    continue
                w = grant.member
                stats.spec_grants += 1
                ivc = all_ivcs[g * v + w]
                if ivc.state is not _ACTIVE or ivc.out_vc is None:
                    stats.spec_wasted += 1  # lost the VC allocation
                    continue
                if ovc_credits[ivc.route * v + ivc.out_vc]._credits <= 0:
                    stats.spec_wasted += 1  # won a VC without a credit
                    continue
                pending.append((g, w))
                stats.sa_grants += 1
                credit_channel = credit_channels[g]
                if credit_channel is not None:
                    credit_channel.send(w, cycle)

        return alloc

    def alloc(cycle: int) -> None:
        pending = router.pending_st

        # Non-speculative grouped lists from the ACTIVE mask.
        ns_groups = []
        ns_members = []
        ns_resources = []
        last_port = -1
        m = router._active_mask
        while m:
            low = m & -m
            m -= low
            flat = low.bit_length() - 1
            if not queues[flat]:
                continue
            ivc = all_ivcs[flat]
            route = ivc.route
            if ovc_credits[route * v + ivc.out_vc]._credits <= 0:
                stats.credits_stalled += 1
                continue
            port = flat_port[flat]
            if port == last_port:
                ns_members[-1].append(flat_vc[flat])
                ns_resources[-1].append(route)
            else:
                last_port = port
                ns_groups.append(port)
                # repro: hot-ok[per-request grant payload; the allocator protocol takes list-of-lists]
                ns_members.append([flat_vc[flat]])
                # repro: hot-ok[per-request grant payload; the allocator protocol takes list-of-lists]
                ns_resources.append([route])

        # Speculative grouped lists from the eligible VC_ALLOC heads
        # (a head bids iff some permitted candidate VC is free).
        sp_groups = []
        sp_members = []
        sp_resources = []
        last_port = -1
        m = router._va_mask
        while m:
            low = m & -m
            m -= low
            flat = low.bit_length() - 1
            ivc = all_ivcs[flat]
            if ivc.va_ready > cycle:
                continue
            route = ivc.route
            base = route * v
            if candidate_table is not None:
                cands = candidate_table[flat][route]
            else:
                cands = cand(route, queues[flat][0])
            for candidate in cands:
                if ovc_flat[base + candidate].held_by is None:
                    break
            else:
                continue
            port = flat_port[flat]
            if port == last_port:
                sp_members[-1].append(flat_vc[flat])
                sp_resources[-1].append(route)
            else:
                last_port = port
                sp_groups.append(port)
                # repro: hot-ok[per-request grant payload; the allocator protocol takes list-of-lists]
                sp_members.append([flat_vc[flat]])
                # repro: hot-ok[per-request grant payload; the allocator protocol takes list-of-lists]
                sp_resources.append([route])

        if ns_groups or sp_groups:
            ns_grants, sp_grants = allocator.allocate_grouped(
                ns_groups, ns_members, ns_resources,
                sp_groups, sp_members, sp_resources,
            )
        else:
            ns_grants, sp_grants = (), ()

        for grant in ns_grants:
            g = grant.group
            w = grant.member
            pending.append((g, w))
            stats.sa_grants += 1
            credit_channel = credit_channels[g]
            if credit_channel is not None:
                credit_channel.send(w, cycle)

        # VC allocation runs in parallel with switch allocation.
        va(cycle)

        # Combine: a speculative grant is useful only with a VC + credit.
        for grant in sp_grants:
            g = grant.group
            w = grant.member
            stats.spec_grants += 1
            ivc = all_ivcs[g * v + w]
            if ivc.state is not _ACTIVE or ivc.out_vc is None:
                stats.spec_wasted += 1  # lost the VC allocation
                continue
            if ovc_credits[ivc.route * v + ivc.out_vc]._credits <= 0:
                stats.spec_wasted += 1  # won a VC without a credit
                continue
            pending.append((g, w))
            stats.sa_grants += 1
            credit_channel = credit_channels[g]
            if credit_channel is not None:
                credit_channel.send(w, cycle)

    return alloc


# ----------------------------------------------------------------------
# Family builders: compose the phase closures in each family's order.
# ----------------------------------------------------------------------


def _build_wormhole(router: BaseRouter):
    grant = _make_grant(router)
    st = _make_st(router)
    alloc = _make_wormhole_alloc(router, grant, vct=False)
    rc = _make_rc(router, vc_family=False, single_cycle=False)

    def step(cycle: int) -> None:
        st(cycle)
        alloc(cycle)
        rc(cycle)

    return step


def _build_vct(router: BaseRouter):
    grant = _make_grant(router)
    st = _make_st(router)
    alloc = _make_wormhole_alloc(router, grant, vct=True)
    rc = _make_rc(router, vc_family=False, single_cycle=False)

    def step(cycle: int) -> None:
        st(cycle)
        alloc(cycle)
        rc(cycle)

    return step


def _build_single_cycle_wormhole(router: BaseRouter):
    grant = _make_grant(router)
    st = _make_st(router)
    alloc = _make_wormhole_alloc(router, grant, vct=False)
    rc = _make_rc(router, vc_family=False, single_cycle=True)

    def step(cycle: int) -> None:
        # Reversed phase order: arrive, route, arbitrate and traverse
        # within the same cycle.
        rc(cycle)
        alloc(cycle)
        st(cycle)

    return step


def _make_va_builder(router: BaseRouter):
    """VA closure for the config's allocator kind (fused separable
    stages, or grouped lists into the batched bitmask matcher)."""
    cand = _make_candidates(router)
    if router.config.allocator_kind == "separable":
        return _make_vc_va(router, cand)
    return _make_vc_va_grouped(router, cand)


def _build_vc(router: BaseRouter):
    grant = _make_grant(router)
    st = _make_st(router)
    sa = _make_vc_sa(router, grant)
    va = _make_va_builder(router)
    rc = _make_vc_rc(router, single_cycle=False)
    if router.config.routing_function == "adaptive":
        reiterate = _make_reiterate(router)

        def step(cycle: int) -> None:
            st(cycle)
            sa(cycle)
            va(cycle)
            reiterate(cycle)
            rc(cycle)

        return step

    def step(cycle: int) -> None:
        st(cycle)
        sa(cycle)
        va(cycle)
        rc(cycle)

    return step


def _build_single_cycle_vc(router: BaseRouter):
    grant = _make_grant(router)
    st = _make_st(router)
    sa = _make_vc_sa(router, grant)
    va = _make_va_builder(router)
    rc = _make_vc_rc(router, single_cycle=True)

    def step(cycle: int) -> None:
        rc(cycle)
        va(cycle)
        sa(cycle)
        st(cycle)

    return step


def _build_spec_vc(router: BaseRouter):
    st = _make_st(router)
    cand = _make_candidates(router)
    config = router.config
    if config.allocator_kind != "separable":
        alloc = _make_spec_alloc_grouped(router, cand)
    elif config.speculation_priority == "equal":
        alloc = _make_spec_alloc_equal(router, cand)
    else:
        alloc = _make_spec_alloc(router, cand)
    rc = _make_vc_rc(router, single_cycle=False)

    def step(cycle: int) -> None:
        st(cycle)
        alloc(cycle)
        rc(cycle)

    return step


_BUILDERS = {
    "wormhole": (WormholeRouter, _build_wormhole),
    "virtual_cut_through": (VirtualCutThroughRouter, _build_vct),
    "single_cycle_wormhole": (
        SingleCycleWormholeRouter, _build_single_cycle_wormhole,
    ),
    "virtual_channel": (VirtualChannelRouter, _build_vc),
    "single_cycle_vc": (SingleCycleVCRouter, _build_single_cycle_vc),
    "speculative_vc": (SpeculativeVCRouter, _build_spec_vc),
}

_PLAN_CACHE: Dict[Tuple, Optional[StepPlan]] = {}

#: Declared for the CONC004 analysis rule: the plan cache is an
#: intentional per-process memo.  Plans are pure functions of the
#: specialization key, so each pool worker recompiling its own copy is
#: correct -- only a few hundred nanoseconds of duplicated work per
#: process, never a correctness fork.
PROCESS_LOCAL = {"_PLAN_CACHE"}


def plan_for(config) -> Optional[StepPlan]:
    """The (interned) step plan for a config.

    Every built-in config compiles: the allocator dimension picks
    between the fused separable stages and the batched bitmask matcher,
    the routing dimension between static route/candidate tables and the
    per-node packet-dependent memos, and the speculation-priority
    dimension between the conservative and shared-arbiter (equal)
    combiners.  The Optional return survives as a guard: a config
    validated by an out-of-tree caller with dimensions this module does
    not know falls back to the generic path via :func:`compile_step`.
    """
    key = specialization_key(config)
    try:
        return _PLAN_CACHE[key]
    except KeyError:
        pass
    plan: Optional[StepPlan] = None
    builders = _BUILDERS.get(config.router_kind.value)
    if builders is not None:
        router_class, builder = builders
        plan = StepPlan(key, router_class, builder, _CANONICAL[router_class])
    _PLAN_CACHE[key] = plan
    return plan


def compile_step(router: BaseRouter):
    """A specialized step closure for ``router``, or None.

    Returns None (generic path) when the config has no plan, a tracer
    is attached, or any step method differs from the canonical function
    captured at import time (instance- or class-level monkeypatch).
    """
    plan = plan_for(router.config)
    if plan is None:
        return None
    if type(router) is not plan.router_class:
        return None
    if router.tracer is not None:
        return None
    if not _uses_canonical(router, plan.canonical):
        return None
    config = router.config
    routing = config.routing_function
    if routing in ("xy", "yx") and router._route_table is None:
        return None
    if isinstance(router, VirtualChannelRouter):
        from ..allocators import SeparableAllocator
        from ..matching import MaximumMatchingAllocator

        # The closures evolve the allocators' internal state directly
        # (fused separable stages, or the grouped bitmask entry point);
        # any substitute -- a recording proxy, a test subclass -- must
        # take the generic path.
        allocator_class = (
            SeparableAllocator
            if config.allocator_kind == "separable"
            else MaximumMatchingAllocator
        )
        if routing in ("xy", "yx") and router._candidate_table is None:
            return None
        if type(router._vc_allocator) is not allocator_class:
            return None
        if type(router._switch_allocator) is not allocator_class:
            return None
        if isinstance(router, SpeculativeVCRouter):
            from ..allocators import SpeculativeSwitchAllocator

            spec_allocator = router._spec_switch_allocator
            if type(spec_allocator) is not SpeculativeSwitchAllocator:
                return None
            if type(spec_allocator._nonspec) is not allocator_class:
                return None
            if type(spec_allocator._spec) is not allocator_class:
                return None
    return plan.builder(router)
