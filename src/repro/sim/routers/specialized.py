"""Config-specialized router step compilation (the saturation-speed path).

At wiring time the network asks :func:`compile_step` for a per-router
step function specialized to the config: the routing table is
precomputed, the port/VC loops run over the struct-of-arrays state
bitmasks instead of scanning VC objects, allocator requests are built as
pre-grouped parallel lists (``SeparableAllocator.allocate_grouped``),
and every branch serving validation, telemetry or tracing is compiled
out.  The compiled closure is bit-identical to the generic
``BaseRouter.cycle`` for the supported configs -- same state
transitions, same arbiter state evolution, same stats, same channel
sends in the same order -- which the high-load differential battery in
``tests/sim/test_fast_stepper.py`` and ``oracle_fast_vs_reference``
enforce.

The generic path remains the executable spec and the fallback:

* configs outside the supported envelope (maximum-matching allocator,
  packet-dependent routing functions, the ``equal`` speculation
  ablation) never compile -- :func:`plan_for` returns ``None``;
* attaching probes, telemetry or a tracer calls
  ``Network.force_generic_step``, clearing every compiled step so
  wrap-based instrumentation keeps intercepting the generic methods;
* a router whose step methods were monkeypatched (instance or class
  level) refuses to specialize -- :func:`compile_step` verifies each
  method against the canonical function captured at import time.

Plans (not closures) are cached per :func:`specialization_key`; the
closures themselves capture per-router state and are built fresh for
every router.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..topology import NUM_PORTS
from .base import _ACTIVE, _VC_ALLOC, BaseRouter
from .single_cycle import SingleCycleVCRouter, SingleCycleWormholeRouter
from .spec_vc import SpeculativeVCRouter
from .vc import VirtualChannelRouter
from .vct import VirtualCutThroughRouter
from .wormhole import WormholeRouter


class StepPlan:
    """A compilable (config-key, router-class, builder) triple.

    Plans are interned per :func:`specialization_key`: two configs with
    the same key share the plan object; configs with different keys
    never do (the specialization-cache tests assert both directions).
    """

    __slots__ = ("key", "router_class", "builder", "canonical")

    def __init__(self, key, router_class, builder, canonical) -> None:
        self.key = key
        self.router_class = router_class
        self.builder = builder
        self.canonical = canonical


def specialization_key(config) -> Tuple:
    """Every config field the compiled step code depends on."""
    return (
        config.router_kind.value,
        config.num_vcs,
        config.buffers_per_vc,
        config.topology,
        config.mesh_radix,
        config.routing_function,
        config.allocator_kind,
        config.arbiter_kind,
        config.speculation_priority,
        config.va_extra_cycles,
        config.packet_length,
    )


# ----------------------------------------------------------------------
# Canonical step methods, captured at import time.  compile_step refuses
# to specialize a router whose class resolves any of these names to a
# different function (class-level monkeypatch) or that shadows one on
# the instance -- the patched generic path must keep running.
# ----------------------------------------------------------------------

_BASE_STEP_METHODS = (
    "cycle",
    "_st_phase",
    "_traverse",
    "_grant_switch",
    "_release_resources",
    "_allocation_phase",
    "_rc_phase",
    "_route",
    "_route_vc",
    "_after_routing",
)
_VC_STEP_METHODS = _BASE_STEP_METHODS + (
    "_vc_allocation",
    "_switch_allocation",
    "_sa_eligible",
    "_collect_va_requests",
    "_candidate_vcs",
)


def _capture(cls, names) -> Tuple[Tuple[str, object], ...]:
    return tuple((name, getattr(cls, name)) for name in names)


_CANONICAL = {
    WormholeRouter: _capture(WormholeRouter, _BASE_STEP_METHODS),
    VirtualCutThroughRouter: _capture(
        VirtualCutThroughRouter, _BASE_STEP_METHODS
    ),
    SingleCycleWormholeRouter: _capture(
        SingleCycleWormholeRouter, _BASE_STEP_METHODS
    ),
    VirtualChannelRouter: _capture(VirtualChannelRouter, _VC_STEP_METHODS),
    SingleCycleVCRouter: _capture(SingleCycleVCRouter, _VC_STEP_METHODS),
    SpeculativeVCRouter: _capture(SpeculativeVCRouter, _VC_STEP_METHODS),
}


def _uses_canonical(router: BaseRouter, canonical) -> bool:
    cls = type(router)
    instance_dict = router.__dict__
    for name, func in canonical:
        if name in instance_dict:
            return False
        if getattr(cls, name, None) is not func:
            return False
    return True


# ----------------------------------------------------------------------
# Closure builders.  Each captures the router's struct-of-arrays views
# once; the per-cycle work then runs on flat lists and int bitmasks.
# ----------------------------------------------------------------------


def _make_grant(router: BaseRouter):
    """Inlined ``_grant_switch`` without the tracer branch."""
    credit_channels = router.credit_channels
    stats = router.stats

    def grant(port: int, vc: int, cycle: int) -> None:
        router.pending_st.append((port, vc))
        stats.sa_grants += 1
        credit_channel = credit_channels[port]
        if credit_channel is not None:
            credit_channel.send(vc, cycle)

    return grant


def _make_st(router: BaseRouter):
    """Inlined ``_st_phase`` + ``_traverse``: tracer branch and the
    duplicate-output set check compiled out; the cheap empty-VC and
    unallocated-resource asserts stay (the failure-injection tests
    expect them on either path).  Tail release stays the shared
    ``_release_resources`` (it owns the mask/port-hold bookkeeping)."""
    v = router.num_vcs
    all_ivcs = router._all_ivcs
    queues = router._ivc_queues
    ovc_flat = router._ovc_flat
    output_channels = router.output_channels
    stats = router.stats
    release = router._release_resources

    def st(cycle: int) -> None:
        pending = router.pending_st
        if not pending:
            return
        router.pending_st = []
        for port, vc in pending:
            flat = port * v + vc
            ivc = all_ivcs[flat]
            queue = queues[flat]
            if not queue:
                raise AssertionError("switch granted to an empty input VC")
            out_port = ivc.route
            out_vc = ivc.out_vc
            if out_port is None or out_vc is None:
                raise AssertionError(
                    "switch granted before resources allocated"
                )
            flit = queue.popleft()
            ovc = ovc_flat[out_port * v + out_vc]
            ovc.credits.consume()
            flit.vcid = out_vc
            output_channels[out_port].send(flit, cycle)
            stats.flits_forwarded += 1
            if flit.is_tail:
                release(ivc, ovc, cycle)

    return st


def _make_rc(router: BaseRouter, *, vc_family: bool, single_cycle: bool):
    """Inlined ``_rc_phase`` iterating the ROUTING bitmask with the
    precomputed routing table (xy/yx only -- plan_for guarantees it)."""
    all_ivcs = router._all_ivcs
    queues = router._ivc_queues
    route_table = router._route_table
    stats = router.stats
    va_delay = 0 if single_cycle else 1 + router.config.va_extra_cycles

    if vc_family:

        def rc(cycle: int) -> None:
            m = router._routing_mask
            routed = 0
            moved = 0
            while m:
                low = m & -m
                m -= low
                flat = low.bit_length() - 1
                ivc = all_ivcs[flat]
                if ivc.routing_ready > cycle:
                    continue
                ivc.route = route_table[queues[flat][0].destination]
                ivc.state = _VC_ALLOC
                ivc.va_ready = cycle + va_delay
                routed += 1
                moved |= low
            if routed:
                stats.packets_routed += routed
                router._routing_mask &= ~moved
                router._va_mask |= moved

    else:

        def rc(cycle: int) -> None:
            m = router._routing_mask
            routed = 0
            moved = 0
            while m:
                low = m & -m
                m -= low
                flat = low.bit_length() - 1
                ivc = all_ivcs[flat]
                if ivc.routing_ready > cycle:
                    continue
                ivc.route = route_table[queues[flat][0].destination]
                ivc.state = _ACTIVE
                routed += 1
                moved |= low
            if routed:
                stats.packets_routed += routed
                router._routing_mask &= ~moved
                router._active_mask |= moved

    return rc


def _make_wormhole_alloc(router: BaseRouter, grant, *, vct: bool):
    """Inlined wormhole/VCT ``_allocation_phase``.

    The reference's ``held_outputs`` busy filter is dropped: free-port
    requests never target a held output (checked right here), so the
    filter -- and the singleton fast path's busy test -- are no-ops.
    """
    all_ivcs = router._all_ivcs
    queues = router._ivc_queues
    ovc_credits = router._ovc_credits
    stats = router.stats
    port_held_by = router.port_held_by
    arbiter = router._switch_arbiter
    member0 = (0,)

    def alloc(cycle: int) -> None:
        held_inputs = 0
        for out_port in range(NUM_PORTS):
            in_port = port_held_by[out_port]
            if in_port is None:
                continue
            held_inputs |= 1 << in_port
            if queues[in_port]:
                if ovc_credits[out_port]._credits > 0:
                    grant(in_port, 0, cycle)
                else:
                    stats.credits_stalled += 1

        m = router._active_mask & ~held_inputs
        groups = []
        resources = []
        while m:
            low = m & -m
            m -= low
            in_port = low.bit_length() - 1
            route = all_ivcs[in_port].route
            if port_held_by[route] is not None:
                continue
            credits = ovc_credits[route]
            if vct:
                if credits._credits < queues[in_port][0].packet.length:
                    stats.credits_stalled += 1
                    continue
            elif credits._credits <= 0:
                stats.credits_stalled += 1
                continue
            groups.append(in_port)
            resources.append((route,))

        if groups:
            for won in arbiter.allocate_grouped(
                groups, [member0] * len(groups), resources
            ):
                in_port = won.group
                all_ivcs[in_port].out_vc = 0
                port_held_by[won.resource] = in_port
                grant(in_port, 0, cycle)

    return alloc


def _make_vc_sa(router: BaseRouter, grant):
    """Inlined ``_switch_allocation`` over the ACTIVE bitmask with
    pre-grouped (port-contiguous, flat-ascending) requests."""
    v = router.num_vcs
    all_ivcs = router._all_ivcs
    queues = router._ivc_queues
    ovc_credits = router._ovc_credits
    stats = router.stats
    allocator = router._switch_allocator
    flat_port = tuple(flat // v for flat in range(NUM_PORTS * v))
    flat_vc = tuple(flat % v for flat in range(NUM_PORTS * v))

    def sa(cycle: int) -> None:
        m = router._active_mask
        groups = []
        members_lists = []
        resources_lists = []
        last_port = -1
        while m:
            low = m & -m
            m -= low
            flat = low.bit_length() - 1
            if not queues[flat]:
                continue
            ivc = all_ivcs[flat]
            route = ivc.route
            if ovc_credits[route * v + ivc.out_vc]._credits <= 0:
                stats.credits_stalled += 1
                continue
            port = flat_port[flat]
            if port == last_port:
                members_lists[-1].append(flat_vc[flat])
                resources_lists[-1].append(route)
            else:
                last_port = port
                groups.append(port)
                members_lists.append([flat_vc[flat]])
                resources_lists.append([route])
        if groups:
            for won in allocator.allocate_grouped(
                groups, members_lists, resources_lists
            ):
                grant(won.group, won.member, cycle)

    return sa


def _make_vc_va(router: BaseRouter):
    """Inlined ``_vc_allocation`` + ``_collect_va_requests`` over the
    VC_ALLOC bitmask and the precomputed candidate-VC table, with the
    VC allocator's two separable stages fused in.

    Each requestor group is one input VC, so stage 1 runs during
    collection (group order is ascending flat order either way); the
    winning candidate's resource is ``route * v + winner`` by
    construction, so no member-to-resource lookup survives inlining.
    """
    v = router.num_vcs
    all_ivcs = router._all_ivcs
    ovc_flat = router._ovc_flat
    allocator = router._vc_allocator
    st1 = allocator._stage1
    st2 = allocator._stage2
    matrix = allocator._matrix
    candidate_table = router._candidate_table
    flat_pairs = tuple(divmod(flat, v) for flat in range(NUM_PORTS * v))

    def va(cycle: int) -> None:
        # Collection + stage 1: per VC_ALLOC head, arbitrate among the
        # currently free candidate output VCs.
        m = router._va_mask
        sur_g = []
        sur_m = []
        sur_r = []
        while m:
            low = m & -m
            m -= low
            flat = low.bit_length() - 1
            ivc = all_ivcs[flat]
            if ivc.va_ready > cycle:
                continue
            route = ivc.route
            base = route * v
            members = None
            for candidate in candidate_table[flat][route]:
                if ovc_flat[base + candidate].held_by is None:
                    if members is None:
                        members = [candidate]
                    else:
                        members.append(candidate)
            if members is None:
                continue
            arb = st1[flat]
            if len(members) == 1:
                w = members[0]
                if matrix:
                    arb._state = (arb._state | arb._col[w]) & arb._row_keep[w]
                else:
                    arb.arbitrate(members)
            else:
                w = arb.arbitrate(members)
            sur_g.append(flat)
            sur_m.append(w)
            sur_r.append(base + w)

        # Stage 2: per output VC, pick one head; the winner takes the
        # VC and turns ACTIVE immediately.
        count = len(sur_g)
        if count == 1:
            g = sur_g[0]
            res = sur_r[0]
            arb = st2[res]
            if matrix:
                arb._state = (arb._state | arb._col[g]) & arb._row_keep[g]
            else:
                arb.arbitrate((g,))
            ivc = all_ivcs[g]
            ovc_flat[res].held_by = flat_pairs[g]
            ivc.out_vc = sur_m[0]
            ivc.state = _ACTIVE
            router._va_mask &= ~(1 << g)
            router._active_mask |= 1 << g
        elif count:
            by_resource = {}
            for k in range(count):
                by_resource.setdefault(sur_r[k], []).append(k)
            moved = 0
            for res, idxs in by_resource.items():
                arb = st2[res]
                if len(idxs) == 1:
                    k = idxs[0]
                    g = sur_g[k]
                    if matrix:
                        arb._state = (
                            arb._state | arb._col[g]
                        ) & arb._row_keep[g]
                    else:
                        arb.arbitrate((g,))
                else:
                    g = arb.arbitrate([sur_g[k] for k in idxs])
                    for k in idxs:
                        if sur_g[k] == g:
                            break
                ivc = all_ivcs[g]
                ovc_flat[res].held_by = flat_pairs[g]
                ivc.out_vc = sur_m[k]
                ivc.state = _ACTIVE
                moved |= 1 << g
            router._va_mask &= ~moved
            router._active_mask |= moved

    return va


def _make_spec_alloc(router: BaseRouter):
    """Inlined speculative ``_allocation_phase`` + ``_vc_allocation``
    with both separable allocators fused in (conservative priority only
    -- plan_for rejects the ``equal`` ablation).

    The arbitration order and priority-state evolution are exactly
    ``SpeculativeSwitchAllocator.allocate_grouped``'s: non-speculative
    stage 1 per input port in request order, stage 2 per output port in
    survivor order (grants applied as each stage-2 winner is decided --
    the batched path's grant order), then the speculative stages with
    non-speculatively taken outputs masked out before stage 1 and taken
    inputs filtered at combine time.  Fusing the allocators in drops
    the per-cycle ``Grant`` tuples, the taken-output set/sort, and the
    busy re-filter list churn that dominate the batched calls.

    VC allocation is fused into the same scan: the reference walks the
    VC_ALLOC heads twice (speculative request collection, then VA
    request collection) with identical candidate scans, and nothing
    between the walks changes ``held_by`` or ``va_ready``.  The two
    allocators' arbiter states are disjoint, so running VA stage 1
    during the shared scan leaves every arbitration input unchanged.
    """
    v = router.num_vcs
    all_ivcs = router._all_ivcs
    queues = router._ivc_queues
    ovc_flat = router._ovc_flat
    ovc_credits = router._ovc_credits
    stats = router.stats
    credit_channels = router.credit_channels
    allocator = router._spec_switch_allocator
    ns1 = allocator._nonspec._stage1
    ns2 = allocator._nonspec._stage2
    sp1 = allocator._spec._stage1
    sp2 = allocator._spec._stage2
    va1 = router._vc_allocator._stage1
    va2 = router._vc_allocator._stage2
    matrix = allocator._nonspec._matrix
    candidate_table = router._candidate_table
    flat_port = tuple(flat // v for flat in range(NUM_PORTS * v))
    flat_vc = tuple(flat % v for flat in range(NUM_PORTS * v))
    flat_pairs = tuple(divmod(flat, v) for flat in range(NUM_PORTS * v))

    def alloc(cycle: int) -> None:
        pending = router.pending_st

        # Non-speculative requests from ACTIVE VCs, flat-ascending
        # (so per-port runs are contiguous), as parallel flat arrays.
        m = router._active_mask
        r_groups = []
        r_members = []
        r_resources = []
        while m:
            low = m & -m
            m -= low
            flat = low.bit_length() - 1
            if not queues[flat]:
                continue
            ivc = all_ivcs[flat]
            route = ivc.route
            if ovc_credits[route * v + ivc.out_vc]._credits <= 0:
                stats.credits_stalled += 1
                continue
            r_groups.append(flat_port[flat])
            r_members.append(flat_vc[flat])
            r_resources.append(route)

        # Non-speculative stage 1: per input port, pick one VC.
        sur_g = []
        sur_m = []
        sur_r = []
        i = 0
        n = len(r_groups)
        while i < n:
            g = r_groups[i]
            j = i + 1
            while j < n and r_groups[j] == g:
                j += 1
            arb = ns1[g]
            if j - i == 1:
                w = r_members[i]
                if matrix:
                    arb._state = (arb._state | arb._col[w]) & arb._row_keep[w]
                else:
                    arb.arbitrate((w,))
                res = r_resources[i]
            else:
                mem = r_members[i:j]
                w = arb.arbitrate(mem)
                res = r_resources[i + mem.index(w)]
            sur_g.append(g)
            sur_m.append(w)
            sur_r.append(res)
            i = j

        # Non-speculative stage 2: per output port, pick one input;
        # apply the grant (pending ST + credit) as it is decided.
        taken_in = 0
        taken_out = 0
        ns_count = len(sur_g)
        if ns_count == 1:
            g = sur_g[0]
            res = sur_r[0]
            arb = ns2[res]
            if matrix:
                arb._state = (arb._state | arb._col[g]) & arb._row_keep[g]
            else:
                arb.arbitrate((g,))
            w = sur_m[0]
            taken_in = 1 << g
            taken_out = 1 << res
            pending.append((g, w))
            stats.sa_grants += 1
            credit_channel = credit_channels[g]
            if credit_channel is not None:
                credit_channel.send(w, cycle)
        elif ns_count:
            by_resource = {}
            for k in range(ns_count):
                by_resource.setdefault(sur_r[k], []).append(k)
            for res, idxs in by_resource.items():
                arb = ns2[res]
                if len(idxs) == 1:
                    k = idxs[0]
                    g = sur_g[k]
                    if matrix:
                        arb._state = (
                            arb._state | arb._col[g]
                        ) & arb._row_keep[g]
                    else:
                        arb.arbitrate((g,))
                else:
                    g = arb.arbitrate([sur_g[k] for k in idxs])
                    for k in idxs:
                        if sur_g[k] == g:
                            break
                w = sur_m[k]
                taken_in |= 1 << g
                taken_out |= 1 << res
                pending.append((g, w))
                stats.sa_grants += 1
                credit_channel = credit_channels[g]
                if credit_channel is not None:
                    credit_channel.send(w, cycle)

        # One scan of the VC_ALLOC heads serves both allocators: per
        # eligible head, arbitrate VA stage 1 among its free candidate
        # VCs, and (if its output was not taken non-speculatively --
        # the batched busy filter) post its speculative switch request.
        m = router._va_mask
        va_g = []
        va_m = []
        va_r = []
        r_groups = []
        r_members = []
        r_resources = []
        while m:
            low = m & -m
            m -= low
            flat = low.bit_length() - 1
            ivc = all_ivcs[flat]
            if ivc.va_ready > cycle:
                continue
            route = ivc.route
            base = route * v
            members = None
            for candidate in candidate_table[flat][route]:
                if ovc_flat[base + candidate].held_by is None:
                    if members is None:
                        members = [candidate]
                    else:
                        members.append(candidate)
            if members is None:
                continue
            arb = va1[flat]
            if len(members) == 1:
                w = members[0]
                if matrix:
                    arb._state = (arb._state | arb._col[w]) & arb._row_keep[w]
                else:
                    arb.arbitrate(members)
            else:
                w = arb.arbitrate(members)
            va_g.append(flat)
            va_m.append(w)
            va_r.append(base + w)
            if taken_out >> route & 1:
                continue
            r_groups.append(flat_port[flat])
            r_members.append(flat_vc[flat])
            r_resources.append(route)

        # Speculative stage 1.
        sur_g = []
        sur_m = []
        sur_r = []
        i = 0
        sn = len(r_groups)
        while i < sn:
            g = r_groups[i]
            j = i + 1
            while j < sn and r_groups[j] == g:
                j += 1
            arb = sp1[g]
            if j - i == 1:
                w = r_members[i]
                if matrix:
                    arb._state = (arb._state | arb._col[w]) & arb._row_keep[w]
                else:
                    arb.arbitrate((w,))
                res = r_resources[i]
            else:
                mem = r_members[i:j]
                w = arb.arbitrate(mem)
                res = r_resources[i + mem.index(w)]
            sur_g.append(g)
            sur_m.append(w)
            sur_r.append(res)
            i = j

        # Speculative stage 2: winners are held until after VA -- the
        # combiner needs to see whether each speculation won its VC.
        sp_g = []
        sp_m = []
        sp_count = len(sur_g)
        if sp_count == 1:
            g = sur_g[0]
            res = sur_r[0]
            arb = sp2[res]
            if matrix:
                arb._state = (arb._state | arb._col[g]) & arb._row_keep[g]
            else:
                arb.arbitrate((g,))
            sp_g.append(g)
            sp_m.append(sur_m[0])
        elif sp_count:
            by_resource = {}
            for k in range(sp_count):
                by_resource.setdefault(sur_r[k], []).append(k)
            for res, idxs in by_resource.items():
                arb = sp2[res]
                if len(idxs) == 1:
                    k = idxs[0]
                    g = sur_g[k]
                    if matrix:
                        arb._state = (
                            arb._state | arb._col[g]
                        ) & arb._row_keep[g]
                    else:
                        arb.arbitrate((g,))
                else:
                    g = arb.arbitrate([sur_g[k] for k in idxs])
                    for k in idxs:
                        if sur_g[k] == g:
                            break
                sp_g.append(g)
                sp_m.append(sur_m[k])

        # VC allocation stage 2: per output VC, pick one head; winners
        # take their VC and turn ACTIVE before the combiner checks
        # speculation outcomes, exactly as the reference's VA phase.
        count = len(va_g)
        if count == 1:
            g = va_g[0]
            res = va_r[0]
            arb = va2[res]
            if matrix:
                arb._state = (arb._state | arb._col[g]) & arb._row_keep[g]
            else:
                arb.arbitrate((g,))
            ivc = all_ivcs[g]
            ovc_flat[res].held_by = flat_pairs[g]
            ivc.out_vc = va_m[0]
            ivc.state = _ACTIVE
            router._va_mask &= ~(1 << g)
            router._active_mask |= 1 << g
        elif count:
            by_resource = {}
            for k in range(count):
                by_resource.setdefault(va_r[k], []).append(k)
            moved = 0
            for res, idxs in by_resource.items():
                arb = va2[res]
                if len(idxs) == 1:
                    k = idxs[0]
                    g = va_g[k]
                    if matrix:
                        arb._state = (
                            arb._state | arb._col[g]
                        ) & arb._row_keep[g]
                    else:
                        arb.arbitrate((g,))
                else:
                    g = arb.arbitrate([va_g[k] for k in idxs])
                    for k in idxs:
                        if va_g[k] == g:
                            break
                ivc = all_ivcs[g]
                ovc_flat[res].held_by = flat_pairs[g]
                ivc.out_vc = va_m[k]
                ivc.state = _ACTIVE
                moved |= 1 << g
            router._va_mask &= ~moved
            router._active_mask |= moved

        # Combine: non-speculative grants win absolutely -- an input
        # port claimed non-speculatively drops its speculative grant
        # before it is counted (the batched ``surviving`` filter).
        for k in range(len(sp_g)):
            g = sp_g[k]
            if taken_in >> g & 1:
                continue
            stats.spec_grants += 1
            w = sp_m[k]
            ivc = all_ivcs[g * v + w]
            if ivc.state is not _ACTIVE:
                stats.spec_wasted += 1  # lost the VC allocation
                continue
            if ovc_credits[ivc.route * v + ivc.out_vc]._credits <= 0:
                stats.spec_wasted += 1  # won a VC without a credit
                continue
            pending.append((g, w))
            stats.sa_grants += 1
            credit_channel = credit_channels[g]
            if credit_channel is not None:
                credit_channel.send(w, cycle)

    return alloc


# ----------------------------------------------------------------------
# Family builders: compose the phase closures in each family's order.
# ----------------------------------------------------------------------


def _build_wormhole(router: BaseRouter):
    grant = _make_grant(router)
    st = _make_st(router)
    alloc = _make_wormhole_alloc(router, grant, vct=False)
    rc = _make_rc(router, vc_family=False, single_cycle=False)

    def step(cycle: int) -> None:
        st(cycle)
        alloc(cycle)
        rc(cycle)

    return step


def _build_vct(router: BaseRouter):
    grant = _make_grant(router)
    st = _make_st(router)
    alloc = _make_wormhole_alloc(router, grant, vct=True)
    rc = _make_rc(router, vc_family=False, single_cycle=False)

    def step(cycle: int) -> None:
        st(cycle)
        alloc(cycle)
        rc(cycle)

    return step


def _build_single_cycle_wormhole(router: BaseRouter):
    grant = _make_grant(router)
    st = _make_st(router)
    alloc = _make_wormhole_alloc(router, grant, vct=False)
    rc = _make_rc(router, vc_family=False, single_cycle=True)

    def step(cycle: int) -> None:
        # Reversed phase order: arrive, route, arbitrate and traverse
        # within the same cycle.
        rc(cycle)
        alloc(cycle)
        st(cycle)

    return step


def _build_vc(router: BaseRouter):
    grant = _make_grant(router)
    st = _make_st(router)
    sa = _make_vc_sa(router, grant)
    va = _make_vc_va(router)
    rc = _make_rc(router, vc_family=True, single_cycle=False)

    def step(cycle: int) -> None:
        st(cycle)
        sa(cycle)
        va(cycle)
        rc(cycle)

    return step


def _build_single_cycle_vc(router: BaseRouter):
    grant = _make_grant(router)
    st = _make_st(router)
    sa = _make_vc_sa(router, grant)
    va = _make_vc_va(router)
    rc = _make_rc(router, vc_family=True, single_cycle=True)

    def step(cycle: int) -> None:
        rc(cycle)
        va(cycle)
        sa(cycle)
        st(cycle)

    return step


def _build_spec_vc(router: BaseRouter):
    st = _make_st(router)
    alloc = _make_spec_alloc(router)
    rc = _make_rc(router, vc_family=True, single_cycle=False)

    def step(cycle: int) -> None:
        st(cycle)
        alloc(cycle)
        rc(cycle)

    return step


_BUILDERS = {
    "wormhole": (WormholeRouter, _build_wormhole),
    "virtual_cut_through": (VirtualCutThroughRouter, _build_vct),
    "single_cycle_wormhole": (
        SingleCycleWormholeRouter, _build_single_cycle_wormhole,
    ),
    "virtual_channel": (VirtualChannelRouter, _build_vc),
    "single_cycle_vc": (SingleCycleVCRouter, _build_single_cycle_vc),
    "speculative_vc": (SpeculativeVCRouter, _build_spec_vc),
}

_PLAN_CACHE: Dict[Tuple, Optional[StepPlan]] = {}


def plan_for(config) -> Optional[StepPlan]:
    """The (interned) step plan for a config, or None if unsupported.

    Unsupported -- the generic path runs instead:

    * ``allocator_kind="maximum"``: no batched entry point, and its
      rotation advances on every call (``_can_sleep`` is off anyway);
    * ``routing_function`` o1turn/adaptive: route and candidate-VC
      choices depend on the packet, so neither table precomputes;
    * ``speculation_priority="equal"``: the ablation shares one
      allocator between request classes, which the batched combiner
      deliberately does not model.
    """
    key = specialization_key(config)
    try:
        return _PLAN_CACHE[key]
    except KeyError:
        pass
    plan: Optional[StepPlan] = None
    if (
        config.allocator_kind == "separable"
        and config.routing_function in ("xy", "yx")
        and not (
            config.router_kind.value == "speculative_vc"
            and config.speculation_priority == "equal"
        )
    ):
        router_class, builder = _BUILDERS[config.router_kind.value]
        plan = StepPlan(key, router_class, builder, _CANONICAL[router_class])
    _PLAN_CACHE[key] = plan
    return plan


def compile_step(router: BaseRouter):
    """A specialized step closure for ``router``, or None.

    Returns None (generic path) when the config has no plan, a tracer
    is attached, or any step method differs from the canonical function
    captured at import time (instance- or class-level monkeypatch).
    """
    plan = plan_for(router.config)
    if plan is None:
        return None
    if type(router) is not plan.router_class:
        return None
    if router.tracer is not None:
        return None
    if not _uses_canonical(router, plan.canonical):
        return None
    if router._route_table is None:
        return None
    if isinstance(router, VirtualChannelRouter):
        from ..allocators import SeparableAllocator

        if router._candidate_table is None:
            return None
        # The fused VA stages evolve the separable allocator's arbiter
        # state directly; any substitute must take the generic path.
        if type(router._vc_allocator) is not SeparableAllocator:
            return None
        if isinstance(router, SpeculativeVCRouter):
            from ..allocators import SpeculativeSwitchAllocator

            # The speculation probe swaps in a recording proxy; only
            # plain (sub-)allocators have the state layout the fused
            # allocation in ``_make_spec_alloc`` evolves directly.
            spec_allocator = router._spec_switch_allocator
            if type(spec_allocator) is not SpeculativeSwitchAllocator:
                return None
            if type(spec_allocator._nonspec) is not SeparableAllocator:
                return None
            if type(spec_allocator._spec) is not SeparableAllocator:
                return None
    return plan.builder(router)
