"""Common router machinery: ports, input VCs, credits, pipeline phasing.

Every router processes three phase groups per cycle, in this order:

1. **ST** -- flits granted switch passage in the *previous* cycle
   traverse the crossbar, depart on their output channels, consume a
   credit, and return a credit upstream for the freed buffer slot.
2. **Allocation** -- switch allocation (and, for VC routers, virtual
   channel allocation) computes the grants consumed by the next cycle's
   ST phase.  Running ST before allocation within a cycle is what makes
   flits stream back-to-back at one per cycle.
3. **RC** -- routing computation for heads that became routable this
   cycle.  Running RC last means a head arriving at cycle ``t`` routes
   at ``t`` and can first bid for allocation at ``t+1``, giving the
   canonical per-hop pipelines (RC | SA | ST and RC | VA | SA | ST).

The network delivers arriving flits and credits *before* phase 1, so a
flit STing upstream at cycle ``t`` (processable here at ``t + 2`` with
1-cycle links) spends exactly ``pipeline depth + 1`` cycles per hop.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Tuple

from ..buffers import FlitBuffer
from ..channel import PipelinedChannel
from ..config import SimConfig
from ..credit import CreditCounter, InfiniteCredits
from ..dateline import o1turn_choice
from ..flit import Flit
from ..topology import LOCAL, Mesh, NUM_PORTS


class VCState(enum.IntEnum):
    """Input virtual-channel states (Section 3.1's inpc/invc_state).

    Int-coded so hot loops compare machine integers; ``IDLE`` is 0 so
    ``bool(ivc.state)`` doubles as "this VC has work in progress".
    Display code should use ``state.name.lower()`` (the old string
    values) rather than ``state.value``.
    """

    IDLE = 0
    ROUTING = 1
    VC_ALLOC = 2              # waiting for an output VC (VC routers only)
    ACTIVE = 3                # has resources; flits bid for the switch


# Cached members for hot loops: enum attribute access resolves through
# the class dict every time, a local/module binding does not.
_IDLE = VCState.IDLE
_ROUTING = VCState.ROUTING
_VC_ALLOC = VCState.VC_ALLOC
_ACTIVE = VCState.ACTIVE


class InputVC:
    """One input virtual channel: its FIFO and channel state.

    ``flat`` is the VC's port-major index (``port * v + vc``) into the
    owning router's struct-of-arrays views (flat VC list, flat buffer
    list, and the per-state bitmasks); ``owner`` is the router, so state
    transitions funnelled through :meth:`reset_to_idle` keep the
    bitmasks in sync without the callers having to.
    """

    __slots__ = (
        "port", "vc", "buffer", "state", "route", "out_vc", "routing_ready",
        "reroute_count", "va_ready", "flat", "owner",
    )

    def __init__(self, port: int, vc: int, capacity: int) -> None:
        self.port = port
        self.vc = vc
        self.buffer = FlitBuffer(capacity)
        self.state = VCState.IDLE
        self.route: Optional[int] = None       # output port from RC
        self.out_vc: Optional[int] = None      # output VC from VA
        self.routing_ready: int = 0             # earliest cycle RC may run
        self.reroute_count: int = 0             # adaptive re-iterations
        self.va_ready: int = 0                  # earliest cycle VA may run
        self.flat: int = 0                      # set by the owning router
        self.owner: Optional["BaseRouter"] = None

    def reset_to_idle(self) -> None:
        self.state = _IDLE
        self.route = None
        self.out_vc = None
        self.reroute_count = 0
        owner = self.owner
        if owner is not None:
            mask = ~(1 << self.flat)
            owner._routing_mask &= mask
            owner._va_mask &= mask
            owner._active_mask &= mask


class OutputVC:
    """One output virtual channel: downstream-buffer credits and holder."""

    __slots__ = ("port", "vc", "credits", "held_by")

    def __init__(self, port: int, vc: int, credits) -> None:
        self.port = port
        self.vc = vc
        self.credits = credits
        #: The input VC currently holding this output VC (None = free).
        self.held_by: Optional[Tuple[int, int]] = None

    @property
    def is_free(self) -> bool:
        return self.held_by is None


class RouterStats:
    """Per-router event counters."""

    __slots__ = (
        "flits_received", "flits_forwarded", "packets_routed", "spec_grants",
        "spec_wasted", "credits_stalled", "sa_grants", "reroutes",
    )

    def __init__(self) -> None:
        self.flits_received = 0
        self.flits_forwarded = 0
        self.packets_routed = 0
        self.spec_grants = 0
        self.spec_wasted = 0
        self.credits_stalled = 0
        self.sa_grants = 0
        self.reroutes = 0


class BaseRouter:
    """Shared structure of all simulated routers.

    Subclasses implement :meth:`_allocation_phase` (and may override the
    other phases).  The network attaches output flit channels and input
    credit channels via :meth:`connect`.
    """

    def __init__(self, node: int, mesh: Mesh, config: SimConfig) -> None:
        self.node = node
        self.mesh = mesh
        self.config = config
        self.num_vcs = config.num_vcs
        self.stats = RouterStats()

        capacity = config.buffers_per_vc
        self.input_vcs: List[List[InputVC]] = [
            [InputVC(port, vc, capacity) for vc in range(self.num_vcs)]
            for port in range(NUM_PORTS)
        ]
        #: Flattened (port-major) view of every input VC, for hot loops.
        self._all_ivcs: List[InputVC] = [
            ivc for port_vcs in self.input_vcs for ivc in port_vcs
        ]
        for flat, ivc in enumerate(self._all_ivcs):
            ivc.flat = flat
            ivc.owner = self
        #: Struct-of-arrays state bitmasks over the flat (port-major)
        #: input-VC index: bit ``i`` of ``_routing_mask`` / ``_va_mask``
        #: / ``_active_mask`` is set iff ``_all_ivcs[i].state`` is
        #: ROUTING / VC_ALLOC / ACTIVE.  Maintained at every state
        #: transition; the specialized steppers iterate set bits instead
        #: of scanning VC objects, and :meth:`is_idle` becomes O(1).
        #: Checked mode cross-validates the masks against the per-VC
        #: states every cycle (``VCExclusivityProbe``).
        self._routing_mask: int = 0
        self._va_mask: int = 0
        self._active_mask: int = 0
        #: Activity flag for the network's fast stepper.  Routers start
        #: active (covers state poked in before the first cycle) and are
        #: re-armed by :meth:`accept_flit` / :meth:`receive_credit`; the
        #: network clears the flag once :meth:`is_idle` proves the next
        #: :meth:`cycle` would be a no-op.
        self.active = True
        #: Whether skipping this router's phases while idle is exact.
        #: Every built-in allocator is pure on an empty request set
        #: (the maximum matcher's rotation advances only on nonempty
        #: input), so idle cycles are provably no-ops; the flag remains
        #: for future router kinds whose allocation mutates state even
        #: with no requests.
        self._can_sleep = True
        self.output_vcs: List[List[OutputVC]] = [
            [
                OutputVC(
                    port,
                    vc,
                    InfiniteCredits() if port == LOCAL else CreditCounter(capacity),
                )
                for vc in range(self.num_vcs)
            ]
            for port in range(NUM_PORTS)
        ]
        #: Flat (port-major) struct-of-arrays views of the output VCs
        #: and their credit counters, mirrors of ``output_vcs``: index
        #: ``port * v + vc``.  The specialized steppers index these with
        #: precomputed flat offsets instead of chasing the nested lists.
        self._ovc_flat: List[OutputVC] = [
            ovc for port_vcs in self.output_vcs for ovc in port_vcs
        ]
        self._ovc_credits: List = [ovc.credits for ovc in self._ovc_flat]
        #: Flat (port-major) list of the raw input-buffer deques.
        self._ivc_queues: List = [ivc.buffer._queue for ivc in self._all_ivcs]
        #: Output flit channels; None for ports at the mesh edge.
        self.output_channels: List[Optional[PipelinedChannel]] = [None] * NUM_PORTS
        #: Upstream credit channels, indexed by *input* port.
        self.credit_channels: List[Optional[PipelinedChannel]] = [None] * NUM_PORTS
        #: Switch grants to execute next ST phase: (input port, input vc).
        self.pending_st: List[Tuple[int, int]] = []
        #: Optional :class:`repro.sim.trace.Tracer` (set via Tracer.attach).
        self.tracer = None
        #: Config-specialized step function compiled at wiring time by
        #: :mod:`repro.sim.routers.specialized` (fast stepper only);
        #: ``None`` means the generic :meth:`cycle` runs.  The network
        #: clears this on every router when probes, telemetry or tracers
        #: attach, so wrap-based instrumentation keeps intercepting the
        #: generic path.
        self._step_fn = None
        from ..routing import make_routing_function

        self._routing_name = config.routing_function
        self._routing_fn = make_routing_function(config.routing_function)
        #: Precomputed routing table for static (flit-independent)
        #: routing functions: ``_route_table[destination]`` is this
        #: node's output port.  Used by *both* the generic and the
        #: specialized path -- corruption is therefore observable under
        #: checked mode -- and None for o1turn/adaptive routing, whose
        #: choice depends on the packet.
        self._route_table: Optional[Tuple[int, ...]] = None
        if self._routing_name in ("xy", "yx"):
            fn = self._routing_fn
            self._route_table = tuple(
                fn(mesh, node, destination)
                for destination in range(mesh.num_nodes)
            )
        #: Packet-dependent route memos (o1turn / adaptive), built
        #: lazily on first use and interned on the step plan
        #: (:mod:`repro.sim.routers.specialized`).  Shared by the
        #: generic and specialized paths -- like ``_route_table``,
        #: corruption is observable under checked mode.
        self._o1turn_route_tables: Optional[Tuple] = None
        self._adaptive_route_table: Optional[Tuple] = None

    # ------------------------------------------------------------------
    # Wiring (called by the network).
    # ------------------------------------------------------------------

    def connect_output(self, port: int, channel: PipelinedChannel) -> None:
        self.output_channels[port] = channel

    def connect_credit(self, port: int, channel: PipelinedChannel) -> None:
        self.credit_channels[port] = channel

    # ------------------------------------------------------------------
    # Network-facing events (delivered before the router's phases).
    # ------------------------------------------------------------------

    def accept_flit(self, port: int, flit: Flit, cycle: int) -> None:
        """A flit arrives on an input port; the vcid field selects the VC."""
        self.active = True
        ivc = self.input_vcs[port][flit.vcid]
        ivc.buffer.push(flit)
        self.stats.flits_received += 1
        if self.tracer is not None:
            from ..trace import EventKind

            self.tracer.record(
                cycle, EventKind.BUFFER_WRITE, self.node, port, flit.vcid,
                flit.packet.packet_id, flit.index,
            )
        if flit.is_head and ivc.state is _IDLE:
            if ivc.buffer.front() is not flit:
                raise AssertionError(
                    "head flit arrived at an idle VC with a non-empty buffer"
                )
            ivc.state = _ROUTING
            ivc.routing_ready = cycle
            self._routing_mask |= 1 << ivc.flat

    def receive_credit(self, port: int, vc: int) -> None:
        """A credit returned for output ``port``/``vc``.

        Deliberately does *not* wake a sleeping router: an idle router
        (no pending grants, every input VC IDLE) has no flit a credit
        could unblock, so its phases stay provable no-ops whatever the
        credit counters hold.  Only :meth:`accept_flit` creates work.
        """
        self.output_vcs[port][vc].credits.restore()

    # ------------------------------------------------------------------
    # Per-cycle phases.
    # ------------------------------------------------------------------

    def cycle(self, cycle: int) -> None:
        self._st_phase(cycle)
        self._allocation_phase(cycle)
        self._rc_phase(cycle)

    def _st_phase(self, cycle: int) -> None:
        """Execute last cycle's switch grants: crossbar + link traversal."""
        if not self.pending_st:
            return
        grants, self.pending_st = self.pending_st, []
        used_outputs = set()
        for port, vc in grants:
            ivc = self.input_vcs[port][vc]
            self._traverse(ivc, cycle, used_outputs)

    def _traverse(self, ivc: InputVC, cycle: int, used_outputs: set) -> None:
        """Move the front flit of ``ivc`` through the crossbar."""
        flit = ivc.buffer.front()
        if flit is None:
            raise AssertionError("switch granted to an empty input VC")
        out_port = ivc.route
        out_vc_index = ivc.out_vc
        if out_port is None or out_vc_index is None:
            raise AssertionError("switch granted before resources allocated")
        if out_port in used_outputs:
            raise AssertionError("two flits granted the same output port")
        used_outputs.add(out_port)

        ovc = self.output_vcs[out_port][out_vc_index]
        ovc.credits.consume()
        ivc.buffer.pop()
        flit.vcid = out_vc_index
        channel = self.output_channels[out_port]
        if channel is None:
            raise AssertionError(
                f"router {self.node}: no channel on output port {out_port}"
            )
        channel.send(flit, cycle)
        self.stats.flits_forwarded += 1
        if self.tracer is not None:
            from ..trace import EventKind

            self.tracer.record(
                cycle, EventKind.TRAVERSAL, self.node, ivc.port, ivc.vc,
                flit.packet.packet_id, flit.index,
            )

        if flit.is_tail:
            self._release_resources(ivc, ovc, cycle)

    def _release_resources(self, ivc: InputVC, ovc: OutputVC, cycle: int) -> None:
        """Tail departed: free the output VC and recycle the input VC."""
        ovc.held_by = None
        ivc.reset_to_idle()
        front = ivc.buffer.front()
        if front is not None:
            if not front.is_head:
                raise AssertionError("non-head flit at VC front after tail departed")
            ivc.state = _ROUTING
            # Channel-state update settles at the cycle's end; the next
            # packet routes from the following cycle.
            ivc.routing_ready = cycle + 1
            self._routing_mask |= 1 << ivc.flat

    def _grant_switch(self, port: int, vc: int, cycle: int) -> None:
        """Record a switch grant and dispatch the flow-control credit.

        The credit for the buffer slot departs *at grant time*: the flit
        is committed and read out of the input queue into the crossbar
        stage, so the slot is handed back upstream a cycle before the
        physical traversal ("credit on read-out").  With 1-cycle credit
        propagation this yields the 5-cycle (wormhole / speculative VC),
        6-cycle (non-speculative VC) and 3-cycle (single-cycle) credit
        loops that reproduce the paper's measured zero-load latencies --
        notably the 1-cycle penalty of the speculative router with
        4-buffer VCs (30 vs 29 cycles, Figure 13 and footnote 15) and
        the 1-cycle turnaround gap between the speculative and
        non-speculative VC routers (Section 5.2).
        """
        self.pending_st.append((port, vc))
        self.stats.sa_grants += 1
        credit_channel = self.credit_channels[port]
        if credit_channel is not None:
            credit_channel.send(vc, cycle)
        if self.tracer is not None:
            from ..trace import EventKind

            flit = self.input_vcs[port][vc].buffer.front()
            if flit is not None:
                self.tracer.record(
                    cycle, EventKind.SWITCH_GRANT, self.node, port, vc,
                    flit.packet.packet_id, flit.index,
                )

    def _allocation_phase(self, cycle: int) -> None:
        raise NotImplementedError

    def _rc_phase(self, cycle: int) -> None:
        """Routing computation for heads that became routable."""
        tracer = self.tracer
        for ivc in self._all_ivcs:
            if ivc.state is _ROUTING and ivc.routing_ready <= cycle:
                flit = ivc.buffer.front()
                if flit is None or not flit.is_head:
                    raise AssertionError("ROUTING state without a head flit")
                ivc.route = self._route_vc(ivc, flit)
                self.stats.packets_routed += 1
                if tracer is not None:
                    from ..trace import EventKind

                    tracer.record(
                        cycle, EventKind.RC, self.node, ivc.port, ivc.vc,
                        flit.packet.packet_id, flit.index,
                    )
                self._after_routing(ivc, cycle)

    def is_idle(self) -> bool:
        """True when the next :meth:`cycle` is provably a no-op.

        No granted traversals are pending and every input VC is IDLE
        (an IDLE VC has an empty buffer -- :meth:`accept_flit` asserts
        it).  Idle routers hold no output VCs or ports either: a held
        resource implies a non-IDLE holder VC in this router.  O(1) via
        the state bitmasks; checked mode cross-validates the masks
        against the per-VC states every cycle.
        """
        if self.pending_st:
            return False
        return not (self._routing_mask | self._va_mask | self._active_mask)

    def _route_vc(self, ivc: InputVC, flit: Flit) -> int:
        """Route a head; subclasses may use per-VC state (adaptivity)."""
        return self._route(flit)

    def _ensure_o1turn_tables(self) -> Tuple:
        """The node's memoized (xy, yx) route-table pair (o1turn)."""
        tables = self._o1turn_route_tables
        if tables is None:
            from .specialized import o1turn_route_tables

            tables = self._o1turn_route_tables = o1turn_route_tables(self)
        return tables

    def _ensure_adaptive_table(self) -> Tuple:
        """The node's memoized (productive ports, DOR port) table."""
        table = self._adaptive_route_table
        if table is None:
            from .specialized import adaptive_route_table

            table = self._adaptive_route_table = adaptive_route_table(self)
        return table

    def _route(self, flit: Flit) -> int:
        table = self._route_table
        if table is not None:
            return table[flit.destination]
        if self._routing_name == "o1turn":
            packet = flit.packet
            tables = self._o1turn_route_tables
            if tables is None:
                tables = self._ensure_o1turn_tables()
            if o1turn_choice(packet) == "yx":
                return tables[1][packet.destination]
            return tables[0][packet.destination]
        return self._routing_fn(self.mesh, self.node, flit.destination)

    def _after_routing(self, ivc: InputVC, cycle: int) -> None:
        """State transition after RC; VC routers go to VC_ALLOC."""
        ivc.state = VCState.ACTIVE
        bit = 1 << ivc.flat
        self._routing_mask &= ~bit
        self._active_mask |= bit

    # ------------------------------------------------------------------
    # Introspection helpers (tests and invariant checks).
    # ------------------------------------------------------------------

    def buffered_flits(self) -> int:
        return sum(
            len(ivc.buffer) for port_vcs in self.input_vcs for ivc in port_vcs
        )

    def check_credit_invariant(self) -> None:
        """Credits never exceed capacity and never go negative."""
        for port_vcs in self.output_vcs:
            for ovc in port_vcs:
                credits = ovc.credits
                if isinstance(credits, CreditCounter):
                    if not 0 <= credits.available <= credits.capacity:
                        raise AssertionError(
                            f"router {self.node} port {ovc.port} vc {ovc.vc}: "
                            f"credit count {credits.available} out of range"
                        )
