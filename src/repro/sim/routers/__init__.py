"""Router microarchitectures for the Section 5 simulations."""

from ..config import RouterKind, SimConfig
from ..topology import Mesh
from .base import BaseRouter, InputVC, OutputVC, RouterStats, VCState
from .wormhole import WormholeRouter
from .vc import VirtualChannelRouter
from .spec_vc import SpeculativeVCRouter
from .single_cycle import SingleCycleVCRouter, SingleCycleWormholeRouter
from .vct import VirtualCutThroughRouter

_ROUTER_CLASSES = {
    RouterKind.WORMHOLE: WormholeRouter,
    RouterKind.VIRTUAL_CHANNEL: VirtualChannelRouter,
    RouterKind.SPECULATIVE_VC: SpeculativeVCRouter,
    RouterKind.SINGLE_CYCLE_WORMHOLE: SingleCycleWormholeRouter,
    RouterKind.SINGLE_CYCLE_VC: SingleCycleVCRouter,
    RouterKind.VIRTUAL_CUT_THROUGH: VirtualCutThroughRouter,
}


def make_router(node: int, mesh: Mesh, config: SimConfig) -> BaseRouter:
    """Instantiate the router class for ``config.router_kind``."""
    try:
        cls = _ROUTER_CLASSES[config.router_kind]
    except KeyError:
        raise ValueError(f"unknown router kind {config.router_kind!r}") from None
    return cls(node, mesh, config)


__all__ = [
    "BaseRouter",
    "InputVC",
    "OutputVC",
    "RouterStats",
    "SingleCycleVCRouter",
    "SingleCycleWormholeRouter",
    "SpeculativeVCRouter",
    "VCState",
    "VirtualChannelRouter",
    "VirtualCutThroughRouter",
    "WormholeRouter",
    "make_router",
]
