"""The 3-stage speculative virtual-channel router (Figure 4c).

Pipeline: route+decode | VC & speculative switch allocation | crossbar.

A head flit waiting for an output VC bids for the switch *in the same
cycle* as it bids for the VC, speculating that VC allocation will
succeed.  The switch allocator runs as two separable allocators in
parallel (Figure 7c): non-speculative requests (flits that already hold
an output VC) have absolute priority; a speculative grant survives the
combiner only if neither its input port nor its output port was claimed
non-speculatively.  A surviving speculative grant still yields a wasted
crossbar passage if VC allocation failed that cycle, or if the granted
output VC has no credit -- both are counted in the router stats.

Because the switch is allocated cycle-by-cycle (never held), failed
speculation cannot deadlock anything; it only wastes the slot
(Section 3.1).
"""

from __future__ import annotations



from ..allocators import Request, SpeculativeSwitchAllocator
from ..config import SimConfig
from ..topology import Mesh, NUM_PORTS
from .base import _ACTIVE, _VC_ALLOC
from .vc import VirtualChannelRouter


class SpeculativeVCRouter(VirtualChannelRouter):
    """3-stage speculative virtual-channel router."""

    def __init__(self, node: int, mesh: Mesh, config: SimConfig) -> None:
        super().__init__(node, mesh, config)
        self._spec_switch_allocator = SpeculativeSwitchAllocator(
            NUM_PORTS, self.num_vcs, config.arbiter_kind,
            config.allocator_kind, config.speculation_priority,
        )

    def _allocation_phase(self, cycle: int) -> None:
        nonspec_requests = []
        spec_requests = []
        for ivc in self._all_ivcs:
            state = ivc.state
            if state is _ACTIVE:
                if self._sa_eligible(ivc):
                    nonspec_requests.append(
                        Request(group=ivc.port, member=ivc.vc, resource=ivc.route)
                    )
            elif state is _VC_ALLOC:
                if ivc.route is None or ivc.va_ready > cycle:
                    continue
                # Bid speculatively only if VC allocation could possibly
                # succeed this cycle (some permitted candidate VC is free).
                candidates = self._candidate_vcs(ivc)
                if any(
                    self.output_vcs[ivc.route][c].is_free for c in candidates
                ):
                    spec_requests.append(
                        Request(group=ivc.port, member=ivc.vc, resource=ivc.route)
                    )

        if nonspec_requests or spec_requests:
            nonspec_grants, spec_grants = self._spec_switch_allocator.allocate(
                nonspec_requests, spec_requests
            )
        else:
            nonspec_grants, spec_grants = (), ()

        for grant in nonspec_grants:
            self._grant_switch(grant.group, grant.member, cycle)

        # VC allocation runs in parallel with switch allocation.
        self._vc_allocation(cycle)

        # Combine: a speculative switch grant is useful only if the same
        # head also won an output VC with a credit available.
        for grant in spec_grants:
            self.stats.spec_grants += 1
            ivc = self.input_vcs[grant.group][grant.member]
            if ivc.state is not _ACTIVE or ivc.out_vc is None:
                self.stats.spec_wasted += 1  # lost the VC allocation
                continue
            if not self.output_vcs[ivc.route][ivc.out_vc].credits:
                self.stats.spec_wasted += 1  # won a VC without a credit
                continue
            self._grant_switch(grant.group, grant.member, cycle)

    @property
    def speculation_success_rate(self) -> float:
        """Fraction of surviving speculative grants that moved a flit."""
        if self.stats.spec_grants == 0:
            return 0.0
        return 1.0 - self.stats.spec_wasted / self.stats.spec_grants
