"""Virtual cut-through router (Related Work: Miller & Najjar's target).

Virtual cut-through (VCT) is wormhole's packet-buffered sibling: a head
flit only wins the switch when the downstream input queue has room for
the *entire packet*, so a blocked packet always fits completely in one
node's buffer instead of spreading across the network holding channels
hostage.  The price is buffering: each input queue must hold at least
one whole packet.

Structurally the router is the 3-stage wormhole router with one changed
eligibility rule (whole-packet credit check at the head).  Comparing it
against wormhole isolates the Related Work's point that flow control and
buffer sizing interact: measured on this canonical single-queue
architecture, VCT tracks wormhole with deep buffers but *loses* with
buffers near the packet size, where the whole-packet admission stalls
heads wormhole would trickle forward (quantified in
``tests/sim/test_vct.py``).
"""

from __future__ import annotations

from ..allocators import Request
from ..config import SimConfig
from ..topology import Mesh, NUM_PORTS
from .base import VCState
from .wormhole import WormholeRouter


class VirtualCutThroughRouter(WormholeRouter):
    """Wormhole datapath + whole-packet admission (VCT flow control)."""

    def __init__(self, node: int, mesh: Mesh, config: SimConfig) -> None:
        if config.buffers_per_vc < config.packet_length:
            raise ValueError(
                "virtual cut-through needs buffers >= packet length "
                f"({config.buffers_per_vc} < {config.packet_length})"
            )
        super().__init__(node, mesh, config)
        self._packet_length = config.packet_length

    def _allocation_phase(self, cycle: int) -> None:
        # Identical to the wormhole allocation except that a *head* may
        # only bid when the downstream queue can absorb the whole packet.
        held_inputs = set()
        for out_port, in_port in enumerate(self.port_held_by):
            if in_port is None:
                continue
            held_inputs.add(in_port)
            ivc = self.input_vcs[in_port][0]
            # body/tail flits continue under the per-flit credit rule --
            # space for them was reserved at admission.
            if ivc.buffer and self.output_vcs[out_port][0].credits:
                self._grant_switch(in_port, 0, cycle)
            elif ivc.buffer:
                self.stats.credits_stalled += 1

        requests = []
        for in_port in range(NUM_PORTS):
            if in_port in held_inputs:
                continue
            ivc = self.input_vcs[in_port][0]
            if ivc.state is not VCState.ACTIVE or ivc.route is None:
                continue
            flit = ivc.buffer.front()
            if flit is None or not flit.is_head:
                continue
            if self.port_held_by[ivc.route] is not None:
                continue
            credits = self.output_vcs[ivc.route][0].credits
            if credits.available < flit.packet.length:
                self.stats.credits_stalled += 1
                continue
            requests.append(Request(group=in_port, member=0, resource=ivc.route))

        if not requests:
            return
        held_outputs = [p for p, holder in enumerate(self.port_held_by)
                        if holder is not None]
        for grant in self._switch_arbiter.allocate(requests, held_outputs):
            ivc = self.input_vcs[grant.group][0]
            ivc.out_vc = 0
            self.port_held_by[grant.resource] = grant.group
            self._grant_switch(grant.group, 0, cycle)