"""The canonical 4-stage virtual-channel router (Figure 3).

Pipeline: route+decode | VC allocation | switch allocation | crossbar.

Each input port has ``v`` virtual channels, each with its own flit queue
and state.  Crossbar ports are shared across the VCs of a physical
channel and allocated *per flit*, cycle by cycle -- the architectural
point that distinguishes this canonical router from Chien's (Section 2).
The VC allocator and switch allocator are both separable two-stage
designs (Figures 7b and 8b); routing is ``R -> p`` (dimension-ordered),
so a head's candidate output VCs are all VCs of its routed port.
"""

from __future__ import annotations

from typing import List, Tuple

from ..allocators import Request
from ..config import SimConfig
from ..topology import Mesh, NUM_PORTS
from .base import _ACTIVE, _ROUTING, _VC_ALLOC, BaseRouter, InputVC, VCState


class VirtualChannelRouter(BaseRouter):
    """4-stage non-speculative virtual-channel router."""

    def __init__(self, node: int, mesh: Mesh, config: SimConfig) -> None:
        super().__init__(node, mesh, config)
        v = self.num_vcs
        from ..dateline import make_vc_policy
        from ..matching import make_allocator

        #: Candidate-VC policy: unrestricted on a mesh, dateline classes
        #: on a torus, O1TURN classes under o1turn routing.
        self._vc_policy = make_vc_policy(config.routing_function, mesh, v)
        #: Precomputed candidate-VC table for flit-independent policies
        #: (AllVCs, DatelineVCs -- their ``allowed_vcs`` ignores the
        #: head flit): ``_candidate_table[flat_ivc][route_port]`` is the
        #: permitted output-VC tuple.  None for O1TURN / adaptive-escape
        #: policies, which key off the packet.  Shared by the generic
        #: and specialized paths.
        from ..dateline import AllVCs, DatelineVCs

        self._candidate_table = None
        if type(self._vc_policy) in (AllVCs, DatelineVCs):
            policy = self._vc_policy
            self._candidate_table = [
                tuple(
                    tuple(policy.allowed_vcs(
                        mesh, node, port, vc, route_port, None
                    ))
                    for route_port in range(NUM_PORTS)
                )
                for port in range(NUM_PORTS)
                for vc in range(v)
            ]

        # VC allocator (Figure 8b): first stage is a v:1 arbiter per
        # input VC choosing among its candidate output VCs; second stage
        # is a (p*v):1 arbiter per output VC.
        self._vc_allocator = make_allocator(
            config.allocator_kind,
            num_groups=NUM_PORTS * v,
            members_per_group=v,
            num_resources=NUM_PORTS * v,
            arbiter_kind=config.arbiter_kind,
        )
        # Switch allocator (Figure 7b): v:1 per input port, then p:1 per
        # output port.
        self._switch_allocator = make_allocator(
            config.allocator_kind,
            num_groups=NUM_PORTS,
            members_per_group=v,
            num_resources=NUM_PORTS,
            arbiter_kind=config.arbiter_kind,
        )
    # ------------------------------------------------------------------

    def _after_routing(self, ivc: InputVC, cycle: int) -> None:
        ivc.state = VCState.VC_ALLOC
        # +1: allocation naturally happens the cycle after routing; the
        # extra cycles model a VC allocator straddling stage boundaries.
        ivc.va_ready = cycle + 1 + self.config.va_extra_cycles
        bit = 1 << ivc.flat
        self._routing_mask &= ~bit
        self._va_mask |= bit

    #: Adaptive reroutes before a head falls back to the DOR port, where
    #: the escape VC guarantees progress.
    ADAPTIVE_REROUTE_FALLBACK = 4

    def _route_vc(self, ivc: InputVC, flit) -> int:
        if self._routing_name != "adaptive":
            return self._route(flit)
        table = self._adaptive_route_table
        if table is None:
            table = self._ensure_adaptive_table()
        ports, dor_port = table[flit.destination]
        if len(ports) == 1 or ivc.reroute_count >= self.ADAPTIVE_REROUTE_FALLBACK:
            return dor_port

        def freedom(port: int) -> int:
            allowed = self._vc_policy.allowed_vcs(
                self.mesh, self.node, ivc.port, ivc.vc, port, flit
            )
            # repro: hot-ok[route-freedom scoring on the adaptive-candidate branch; bounded by num_vcs]
            return sum(
                1
                for c in allowed
                if self.output_vcs[port][c].is_free
                and self.output_vcs[port][c].credits
            )

        # Most free (and credited) permitted output VCs wins; ties go to
        # the dimension-order port, which also offers the escape VC.
        return max(ports, key=lambda p: (freedom(p), p == dor_port))

    def _allocation_phase(self, cycle: int) -> None:
        # Switch allocation runs on the state at the start of the cycle;
        # VCs winning VC allocation this cycle bid for the switch from
        # the next cycle (the VA -> SA pipeline dependency, Figure 4b).
        self._switch_allocation(cycle)
        self._vc_allocation(cycle)
        if self._routing_name == "adaptive":
            self._reiterate_blocked_heads(cycle)

    def _reiterate_blocked_heads(self, cycle: int) -> None:
        """Footnote 5 (option b): a head whose routed port has no free
        permitted output VC goes back through the routing stage, where it
        may pick the other productive port (or the DOR fallback)."""
        for ivc in self._all_ivcs:
            if ivc.state is not _VC_ALLOC or ivc.route is None:
                continue
            candidates = self._candidate_vcs(ivc)
            if any(
                self.output_vcs[ivc.route][c].is_free for c in candidates
            ):
                continue
            ivc.state = _ROUTING
            ivc.routing_ready = cycle + 1
            ivc.route = None
            ivc.reroute_count += 1
            self.stats.reroutes += 1
            bit = 1 << ivc.flat
            self._va_mask &= ~bit
            self._routing_mask |= bit

    # ------------------------------------------------------------------

    def _vc_allocation(self, cycle: int) -> None:
        requests = self._collect_va_requests(cycle)
        if not requests:
            return  # every allocator kind is pure on empty inputs
        tracer = self.tracer
        for grant in self._vc_allocator.allocate(requests):
            in_port, in_vc = divmod(grant.group, self.num_vcs)
            out_port, out_vc = divmod(grant.resource, self.num_vcs)
            ivc = self.input_vcs[in_port][in_vc]
            ovc = self.output_vcs[out_port][out_vc]
            if not ovc.is_free:
                raise AssertionError("VC allocator granted a held output VC")
            ovc.held_by = (in_port, in_vc)
            ivc.out_vc = out_vc
            ivc.state = _ACTIVE
            bit = 1 << ivc.flat
            self._va_mask &= ~bit
            self._active_mask |= bit
            if tracer is not None:
                from ..trace import EventKind

                head = ivc.buffer.front()
                if head is not None:
                    tracer.record(
                        cycle, EventKind.VC_GRANT, self.node, in_port,
                        in_vc, head.packet.packet_id, head.index,
                    )

    def _candidate_vcs(self, ivc: InputVC) -> Tuple[int, ...]:
        """Output-VC candidates the routing function's range (and the
        VC-class policy) permits for a routed head."""
        head = ivc.buffer.front()
        if head is None:
            raise AssertionError("candidate query on an empty VC")
        table = self._candidate_table
        if table is not None:
            return table[ivc.flat][ivc.route]
        return tuple(
            self._vc_policy.allowed_vcs(
                self.mesh, self.node, ivc.port, ivc.vc, ivc.route, head
            )
        )

    def _collect_va_requests(self, cycle: int) -> List[Request]:
        """One request per (input VC, candidate output VC) pair."""
        requests: List[Request] = []
        v = self.num_vcs
        for ivc in self._all_ivcs:
            if ivc.state is not _VC_ALLOC or ivc.route is None:
                continue
            if ivc.va_ready > cycle:
                continue
            group = ivc.port * v + ivc.vc
            for candidate in self._candidate_vcs(ivc):
                ovc = self.output_vcs[ivc.route][candidate]
                if ovc.is_free:
                    requests.append(
                        Request(
                            group=group,
                            member=candidate,
                            resource=ivc.route * v + candidate,
                        )
                    )
        return requests

    # ------------------------------------------------------------------

    def _switch_allocation(self, cycle: int) -> None:
        requests = []
        for ivc in self._all_ivcs:
            if self._sa_eligible(ivc):
                requests.append(
                    Request(group=ivc.port, member=ivc.vc, resource=ivc.route)
                )
        if not requests:
            return
        for grant in self._switch_allocator.allocate(requests):
            self._grant_switch(grant.group, grant.member, cycle)

    def _sa_eligible(self, ivc: InputVC) -> bool:
        """ACTIVE, a buffered flit at the front, and a credit downstream."""
        if ivc.state is not _ACTIVE or ivc.out_vc is None:
            return False
        if not ivc.buffer:
            return False
        if not self.output_vcs[ivc.route][ivc.out_vc].credits:
            self.stats.credits_stalled += 1
            return False
        return True
