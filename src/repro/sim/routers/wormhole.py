"""The canonical 3-stage pipelined wormhole router (Figure 2).

Pipeline: route+decode | switch arbitration | crossbar traversal.

One flit queue per input port.  The global switch arbiter allocates an
output port to a packet's head flit and *holds* it until the tail
departs (per-packet switch allocation); body and tail flits of the
holding packet pass without re-arbitrating.  Credits are kept per
output port (the downstream input queue).
"""

from __future__ import annotations

from typing import List, Optional

from ..allocators import Request, SeparableAllocator
from ..config import SimConfig
from ..topology import Mesh, NUM_PORTS
from .base import BaseRouter, InputVC, VCState


class WormholeRouter(BaseRouter):
    """3-stage wormhole router with per-packet switch arbitration."""

    def __init__(self, node: int, mesh: Mesh, config: SimConfig) -> None:
        if config.num_vcs != 1:
            raise ValueError("wormhole routers have one queue per input port")
        super().__init__(node, mesh, config)
        #: Output-port hold state: the input port owning each output port.
        self.port_held_by: List[Optional[int]] = [None] * NUM_PORTS
        # Switch arbiter: one pi:1 matrix arbiter per output port
        # (Figure 7a); modelled as a separable allocator with singleton
        # first-stage groups.
        self._switch_arbiter = SeparableAllocator(
            num_groups=NUM_PORTS,
            members_per_group=1,
            num_resources=NUM_PORTS,
            arbiter_kind=config.arbiter_kind,
        )

    def _allocation_phase(self, cycle: int) -> None:
        # 1. Held ports: the holder streams its next flit when one is
        #    buffered and a credit is available (no arbitration needed).
        held_inputs = set()
        for out_port, in_port in enumerate(self.port_held_by):
            if in_port is None:
                continue
            held_inputs.add(in_port)
            ivc = self.input_vcs[in_port][0]
            if ivc.buffer and self.output_vcs[out_port][0].credits:
                self._grant_switch(in_port, 0, cycle)
            elif ivc.buffer:
                self.stats.credits_stalled += 1

        # 2. Free ports: head flits in ACTIVE state arbitrate.
        requests = []
        for in_port in range(NUM_PORTS):
            if in_port in held_inputs:
                continue
            ivc = self.input_vcs[in_port][0]
            if ivc.state is not VCState.ACTIVE or ivc.route is None:
                continue
            flit = ivc.buffer.front()
            if flit is None or not flit.is_head:
                continue
            if self.port_held_by[ivc.route] is not None:
                continue
            if not self.output_vcs[ivc.route][0].credits:
                self.stats.credits_stalled += 1
                continue
            requests.append(Request(group=in_port, member=0, resource=ivc.route))

        if not requests:
            # The separable arbiter grants nothing (and mutates nothing)
            # on an empty request set; skip the call entirely.
            return
        # repro: hot-ok[bounded per-cycle scratch in the reference wormhole arbiter]
        held_outputs = [p for p, holder in enumerate(self.port_held_by)
                        if holder is not None]
        for grant in self._switch_arbiter.allocate(requests, held_outputs):
            ivc = self.input_vcs[grant.group][0]
            ivc.out_vc = 0
            self.port_held_by[grant.resource] = grant.group
            self._grant_switch(grant.group, 0, cycle)

    def _release_resources(self, ivc: InputVC, ovc, cycle: int) -> None:
        # The tail frees the held output port as it departs.
        self.port_held_by[ovc.port] = None
        super()._release_resources(ivc, ovc, cycle)
