"""Cycle-accurate flit-level simulator for the Section 5 experiments.

Builds a k x k mesh of pipelined routers (wormhole, virtual-channel,
speculative virtual-channel, or the unit-latency baselines) with
credit-based flow control, and measures latency-throughput curves under
uniform random traffic.

Quick use::

    from repro.sim import RouterKind, SimConfig, simulate

    result = simulate(SimConfig(
        router_kind=RouterKind.SPECULATIVE_VC,
        num_vcs=2, buffers_per_vc=4, injection_fraction=0.2,
    ))
    print(result.describe())
"""

from .config import MeasurementConfig, RouterKind, SimConfig, paper_scale
from .engine import Simulator, simulate
from .flit import Flit, FlitType, Packet
from .instrumentation import (
    NullProgress,
    PrintProgress,
    ProgressHook,
    RunCounters,
)
from .metrics import AggregateResult, LatencyStats, RunResult, SweepResult
from .network import Network, Sink, Source
from .topology import (
    EAST,
    LOCAL,
    Mesh,
    NORTH,
    NUM_PORTS,
    SOUTH,
    Torus,
    WEST,
    make_topology,
    port_dimension,
)
from .dateline import (
    AdaptiveEscapeVCs,
    AllVCs,
    DatelineVCs,
    O1TurnVCs,
    make_vc_policy,
    o1turn_choice,
    vc_class,
)
from .routing import dimension_order_route, productive_ports, route_path
from .traffic import PacketSource, rate_from_capacity_fraction
from .credit import (
    CreditCounter,
    CreditLoopTiming,
    InfiniteCredits,
    turnaround_cycles,
    turnaround_timeline,
)
from .trace import EventKind, TraceEvent, Tracer
from .snapshot import busiest_routers, describe_router, occupancy_map
from .matching import MaximumMatchingAllocator, make_allocator
from .validation import InvariantViolation, ValidationSuite, Violation

__all__ = [
    "CreditCounter",
    "CreditLoopTiming",
    "NullProgress",
    "PrintProgress",
    "ProgressHook",
    "RunCounters",
    "EAST",
    "EventKind",
    "Flit",
    "FlitType",
    "MaximumMatchingAllocator",
    "TraceEvent",
    "Tracer",
    "make_allocator",
    "InfiniteCredits",
    "LOCAL",
    "LatencyStats",
    "MeasurementConfig",
    "Mesh",
    "NORTH",
    "NUM_PORTS",
    "Network",
    "Packet",
    "PacketSource",
    "RouterKind",
    "RunResult",
    "SOUTH",
    "AdaptiveEscapeVCs",
    "AggregateResult",
    "AllVCs",
    "DatelineVCs",
    "O1TurnVCs",
    "SimConfig",
    "Simulator",
    "Sink",
    "Source",
    "SweepResult",
    "Torus",
    "WEST",
    "make_topology",
    "make_vc_policy",
    "o1turn_choice",
    "port_dimension",
    "vc_class",
    "dimension_order_route",
    "paper_scale",
    "productive_ports",
    "rate_from_capacity_fraction",
    "route_path",
    "simulate",
    "busiest_routers",
    "describe_router",
    "occupancy_map",
    "turnaround_cycles",
    "turnaround_timeline",
    "InvariantViolation",
    "ValidationSuite",
    "Violation",
]
