"""Maximum-matching allocator: the upper bound separable designs give up.

Section 3.2: "Separable allocators admit a simple implementation while
sacrificing a small amount of allocation efficiency compared to more
complex approaches."  This module supplies the *more complex approach* --
an exact maximum bipartite matching between requestor groups and
resources -- so the ablation benchmarks can quantify that sacrifice.

The matcher is deliberately hardware-naive (it would never fit a clock
cycle; that is the paper's point), but it is fair: requestors are
considered in a rotating order so no group or member is starved.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from .allocators import Grant, Request


class MaximumMatchingAllocator:
    """Exact maximum matching with rotating tie-break priority.

    Drop-in replacement for
    :class:`repro.sim.allocators.SeparableAllocator` (same ``allocate``
    signature and matching constraints: at most one grant per group and
    per resource).
    """

    def __init__(
        self,
        num_groups: int,
        members_per_group: int,
        num_resources: int,
        arbiter_kind: str = "matrix",  # accepted for interface parity
    ) -> None:
        if num_groups < 1 or members_per_group < 1 or num_resources < 1:
            raise ValueError("allocator dimensions must be positive")
        self.num_groups = num_groups
        self.members_per_group = members_per_group
        self.num_resources = num_resources
        self._rotation = 0

    def allocate(
        self, requests: Sequence[Request], busy_resources: Sequence[int] = ()
    ) -> List[Grant]:
        self._validate(requests)
        busy = set(busy_resources)

        # Adjacency: group -> resources it may use (via any member).
        edges: Dict[int, List[int]] = {}
        chooser: Dict[Tuple[int, int], Request] = {}
        for request in requests:
            if request.resource in busy:
                continue
            edges.setdefault(request.group, []).append(request.resource)
            key = (request.group, request.resource)
            # Rotate member preference so no member starves.
            if key not in chooser or self._prefers(request, chooser[key]):
                chooser[key] = request

        # Hopcroft-Karp would be overkill at p=5; classic augmenting-path
        # matching in rotating group order is exact and fair.
        match_of_resource: Dict[int, int] = {}
        groups = sorted(edges)
        if groups:
            offset = self._rotation % len(groups)
            groups = groups[offset:] + groups[:offset]
        self._rotation += 1

        def augment(group: int, visited: Set[int]) -> bool:
            for resource in edges[group]:
                if resource in visited:
                    continue
                visited.add(resource)
                holder = match_of_resource.get(resource)
                if holder is None or augment(holder, visited):
                    match_of_resource[resource] = group
                    return True
            return False

        for group in groups:
            augment(group, set())

        grants = []
        for resource, group in sorted(match_of_resource.items()):
            request = chooser[(group, resource)]
            grants.append(Grant(group, request.member, resource))
        return grants

    def _prefers(self, new: Request, old: Request) -> bool:
        """Rotating member preference within a (group, resource) pair."""
        pivot = self._rotation % self.members_per_group
        new_rank = (new.member - pivot) % self.members_per_group
        old_rank = (old.member - pivot) % self.members_per_group
        return new_rank < old_rank

    def _validate(self, requests: Sequence[Request]) -> None:
        for r in requests:
            if not 0 <= r.group < self.num_groups:
                raise ValueError(f"group {r.group} out of range")
            if not 0 <= r.member < self.members_per_group:
                raise ValueError(f"member {r.member} out of range")
            if not 0 <= r.resource < self.num_resources:
                raise ValueError(f"resource {r.resource} out of range")


def make_allocator(
    kind: str,
    num_groups: int,
    members_per_group: int,
    num_resources: int,
    arbiter_kind: str = "matrix",
):
    """Factory over allocation strategies: ``"separable"`` (the paper's)
    or ``"maximum"`` (exact matching, for the efficiency ablation)."""
    from .allocators import SeparableAllocator

    if kind == "separable":
        return SeparableAllocator(
            num_groups, members_per_group, num_resources, arbiter_kind
        )
    if kind == "maximum":
        return MaximumMatchingAllocator(
            num_groups, members_per_group, num_resources, arbiter_kind
        )
    raise ValueError(f"unknown allocator kind {kind!r}")
