"""Maximum-matching allocator: the upper bound separable designs give up.

Section 3.2: "Separable allocators admit a simple implementation while
sacrificing a small amount of allocation efficiency compared to more
complex approaches."  This module supplies the *more complex approach* --
an exact maximum bipartite matching between requestor groups and
resources -- so the ablation benchmarks can quantify that sacrifice.

The matcher is deliberately hardware-naive (it would never fit a clock
cycle; that is the paper's point), but it is fair: requestors are
considered in a rotating order so no group or member is starved.

The augmenting-path search runs over int bitmasks: each group's
adjacency is one int (bit ``r`` set iff the group may use resource
``r``), and the visited set of a search is a single int, so the inner
loop is bit arithmetic instead of set/dict churn.  Both entry points --
:meth:`MaximumMatchingAllocator.allocate` (the ``Request``-object
executable spec) and :meth:`MaximumMatchingAllocator.allocate_grouped`
(the batched form the config-specialized steppers feed directly from
the struct-of-arrays router state) -- reduce to the same
``(adjacency, chooser)`` masks and share one matcher, so their grants
and rotation-state evolution are bit-identical by construction.

An empty request set is a pure no-op (no rotation advance), which is
what lets maximum-matching routers participate in activity-tracked
sleeping: an idle router skips its allocate calls entirely, and the
allocator state a later wake observes is the same as if the empty calls
had been made.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .allocators import Grant, Request


class MaximumMatchingAllocator:
    """Exact maximum matching with rotating tie-break priority.

    Drop-in replacement for
    :class:`repro.sim.allocators.SeparableAllocator` (same ``allocate``
    and ``allocate_grouped`` signatures and matching constraints: at
    most one grant per group and per resource).
    """

    def __init__(
        self,
        num_groups: int,
        members_per_group: int,
        num_resources: int,
        arbiter_kind: str = "matrix",  # accepted for interface parity
    ) -> None:
        if num_groups < 1 or members_per_group < 1 or num_resources < 1:
            raise ValueError("allocator dimensions must be positive")
        self.num_groups = num_groups
        self.members_per_group = members_per_group
        self.num_resources = num_resources
        self._rotation = 0

    def allocate(
        self, requests: Sequence[Request], busy_resources: Sequence[int] = ()
    ) -> List[Grant]:
        self._validate(requests)
        if not requests:
            return []
        busy = 0
        for resource in busy_resources:
            busy |= 1 << resource
        pivot = self._rotation % self.members_per_group
        mpg = self.members_per_group
        nr = self.num_resources

        # Adjacency: group -> bitmask of resources it may use (via any
        # member); chooser remembers, per (group, resource) edge, which
        # member claims it -- rotating member preference so none starves.
        adjacency: Dict[int, int] = {}
        chooser: Dict[int, int] = {}
        for request in requests:
            resource = request.resource
            if busy >> resource & 1:
                continue
            group = request.group
            adjacency[group] = adjacency.get(group, 0) | (1 << resource)
            key = group * nr + resource
            member = request.member
            held = chooser.get(key)
            if held is None or (member - pivot) % mpg < (held - pivot) % mpg:
                chooser[key] = member
        return self._match(adjacency, chooser)

    def allocate_grouped(
        self,
        groups: Sequence[int],
        members_lists: Sequence[Sequence[int]],
        resources_lists: Sequence[Sequence[int]],
        busy_resources: Sequence[int] = (),
    ) -> List[Grant]:
        """Batched :meth:`allocate` for pre-grouped requests.

        Same contract as
        :meth:`repro.sim.allocators.SeparableAllocator.allocate_grouped`:
        ``groups`` in first-appearance order, ``members_lists[i]`` /
        ``resources_lists[i]`` aligned per group.  Skips ``Request``
        construction and ``_validate`` and builds the adjacency
        bitmasks directly, then runs the shared matcher -- grants and
        rotation state evolve exactly as an equivalent
        :meth:`allocate` call.  Used by the config-specialized
        steppers; the generic phases keep the ``Request`` path as the
        executable spec.
        """
        if not groups:
            return []
        busy = 0
        for resource in busy_resources:
            busy |= 1 << resource
        pivot = self._rotation % self.members_per_group
        mpg = self.members_per_group
        nr = self.num_resources

        adjacency: Dict[int, int] = {}
        chooser: Dict[int, int] = {}
        for group, members, resources in zip(
            groups, members_lists, resources_lists
        ):
            mask = adjacency.get(group, 0)
            for member, resource in zip(members, resources):
                if busy >> resource & 1:
                    continue
                mask |= 1 << resource
                key = group * nr + resource
                held = chooser.get(key)
                if held is None or (member - pivot) % mpg < (held - pivot) % mpg:
                    chooser[key] = member
            if mask:
                adjacency[group] = mask
        return self._match(adjacency, chooser)

    def _match(
        self, adjacency: Dict[int, int], chooser: Dict[int, int]
    ) -> List[Grant]:
        """Augmenting-path maximum matching over adjacency bitmasks.

        Called with the busy-filtered adjacency of a *nonempty* raw
        request set; advances the rotation exactly once per such call
        (even when filtering emptied the adjacency), matching the
        historical per-allocation rotation cadence.
        """
        rotation = self._rotation
        self._rotation = rotation + 1
        if not adjacency:
            return []

        # Hopcroft-Karp would be overkill at p=5; classic augmenting-path
        # matching in rotating group order is exact and fair.
        groups = sorted(adjacency)
        offset = rotation % len(groups)
        groups = groups[offset:] + groups[:offset]

        match_group: Dict[int, int] = {}  # resource *bit* -> group
        visited = 0

        # repro: hot-ok[recursive augmenting-path helper closing over per-call matching state]
        def augment(group: int) -> bool:
            nonlocal visited
            mask = adjacency[group]
            while mask:
                low = mask & -mask
                mask -= low
                if visited & low:
                    continue
                visited |= low
                holder = match_group.get(low)
                if holder is None or augment(holder):
                    match_group[low] = group
                    return True
            return False

        for group in groups:
            visited = 0
            augment(group)

        nr = self.num_resources
        grants = []
        for bit, group in sorted(match_group.items()):
            resource = bit.bit_length() - 1
            grants.append(Grant(group, chooser[group * nr + resource], resource))
        return grants

    def _validate(self, requests: Sequence[Request]) -> None:
        for r in requests:
            if not 0 <= r.group < self.num_groups:
                raise ValueError(f"group {r.group} out of range")
            if not 0 <= r.member < self.members_per_group:
                raise ValueError(f"member {r.member} out of range")
            if not 0 <= r.resource < self.num_resources:
                raise ValueError(f"resource {r.resource} out of range")


def make_allocator(
    kind: str,
    num_groups: int,
    members_per_group: int,
    num_resources: int,
    arbiter_kind: str = "matrix",
):
    """Factory over allocation strategies: ``"separable"`` (the paper's)
    or ``"maximum"`` (exact matching, for the efficiency ablation)."""
    from .allocators import SeparableAllocator

    if kind == "separable":
        return SeparableAllocator(
            num_groups, members_per_group, num_resources, arbiter_kind
        )
    if kind == "maximum":
        return MaximumMatchingAllocator(
            num_groups, members_per_group, num_resources, arbiter_kind
        )
    raise ValueError(f"unknown allocator kind {kind!r}")
