"""Simulation driver: warm-up, sampling, drain, and measurement.

Mirrors the paper's methodology (Section 5): run a warm-up phase, then
tag a sample of injected packets and keep simulating until every tagged
packet has been received, measuring average latency over the sample.
Saturated configurations never drain; a drain-cycle cap turns those runs
into ``saturated=True`` results (the vertical part of the curves).
"""

from __future__ import annotations

import time
from typing import List, Optional, Union

from ..telemetry.config import TelemetryConfig
from ..telemetry.session import TelemetrySession, resolve_telemetry
from .config import MeasurementConfig, SimConfig
from .instrumentation import collect_counters
from .metrics import LatencyStats, RunResult
from .network import Network
from .validation import ValidationSuite, resolve_checked


class Simulator:
    """One simulation run at a fixed configuration.

    ``checked`` enables the invariant-probe layer of
    :mod:`repro.sim.validation`: ``True`` runs the default probe suite
    for the config every cycle, or pass a configured
    :class:`~repro.sim.validation.ValidationSuite`.  With validation
    disabled (the default) the probes cost nothing: the per-step hook is
    a single attribute test.  ``check_invariants`` is the legacy
    coarse-grained flag (network-wide conservation + credit ranges);
    prefer ``checked``.

    ``telemetry`` enables the observability layer of
    :mod:`repro.telemetry` the same way: ``True`` (or a
    :class:`~repro.telemetry.TelemetryConfig` /
    :class:`~repro.telemetry.TelemetrySession`) attaches collectors
    whose summary lands on ``RunResult.telemetry``; ``None`` defers to
    ``config.telemetry``.  Disabled, it is the same single attribute
    test per step and installs nothing.
    """

    def __init__(
        self,
        config: SimConfig,
        measurement: Optional[MeasurementConfig] = None,
        check_invariants: bool = False,
        checked: Union[ValidationSuite, bool, None] = None,
        telemetry: Union[TelemetrySession, TelemetryConfig, bool, None] = None,
    ) -> None:
        self.config = config
        self.measurement = measurement or MeasurementConfig()
        self.check_invariants = check_invariants
        self.network = Network(config)
        self.validation = resolve_checked(checked, config)
        if self.validation is not None:
            self.validation.attach(self.network)
        self.telemetry = resolve_telemetry(telemetry, config)
        if self.telemetry is not None:
            self.telemetry.attach(self.network)

    def run(self) -> RunResult:
        network = self.network
        measurement = self.measurement
        wall: dict = {}
        # repro: allow[DET002] wall-clock stats only (RunResult.wall)
        t0 = time.perf_counter()

        # Warm-up: packets injected now are excluded from the sample.
        network.measuring_generation = False
        self._run_cycles(measurement.warmup_cycles)
        warmup_end = network.cycle
        t1 = time.perf_counter()  # repro: allow[DET002] wall-clock stats only
        wall["warmup"] = t1 - t0

        # Sampling: tag the next `sample_packets` generated packets.
        network.measuring_generation = True
        generated_before = network.packets_generated
        ejected_before = network.total_flits_ejected()
        measure_start = network.cycle
        target = measurement.sample_packets
        injection_deadline = measurement.max_cycles
        while (
            network.packets_generated - generated_before < target
            and network.cycle < injection_deadline
        ):
            self._step()
        network.measuring_generation = False
        sample_size = network.packets_generated - generated_before
        # Accepted throughput: the ejection rate over the sampling
        # window (all packets, sampled or not -- the steady-state rate).
        window = max(1, network.cycle - measure_start)
        ejected_in_window = network.total_flits_ejected() - ejected_before
        sample_end = network.cycle
        t2 = time.perf_counter()  # repro: allow[DET002] wall-clock stats only
        wall["sample"] = t2 - t1

        # Drain: run until every tagged packet is ejected (or give up).
        drain_deadline = min(
            network.cycle + measurement.drain_cycles, measurement.max_cycles
        )
        while network.cycle < drain_deadline and not self._sample_complete(
            sample_size
        ):
            self._step()
        t3 = time.perf_counter()  # repro: allow[DET002] wall-clock stats only
        wall["drain"] = t3 - t2
        wall["total"] = t3 - t0

        delivered = self._delivered_sample()
        saturated = len(delivered) < sample_size
        # An undrained sample's mean is biased low (the missing packets
        # are the slow ones); such runs report latency=None/inf.
        latency = (
            LatencyStats.from_packets(delivered)
            if delivered and not saturated
            else None
        )

        accepted_flits = ejected_in_window / (network.mesh.num_nodes * window)
        accepted_fraction = (
            accepted_flits / network.mesh.capacity_flits_per_node_cycle()
        )

        counters = collect_counters(
            network,
            warmup_cycles=warmup_end,
            sample_cycles=sample_end - warmup_end,
            drain_cycles=network.cycle - sample_end,
            wall_seconds=wall,
        )
        validation = (
            self.validation.finalize(network)
            if self.validation is not None else None
        )
        telemetry = (
            self.telemetry.finalize(network)
            if self.telemetry is not None else None
        )
        return RunResult(
            injection_fraction=self.config.injection_fraction,
            latency=None if saturated else latency,
            accepted_fraction=accepted_fraction,
            saturated=saturated,
            cycles_simulated=network.cycle,
            sample_packets=sample_size,
            spec_grants=counters.spec_grants,
            spec_wasted=counters.spec_wasted,
            counters=counters,
            validation=validation,
            telemetry=telemetry,
            source="simulated",
        )

    # ------------------------------------------------------------------

    def _step(self) -> None:
        self.network.step()
        if self.check_invariants:
            self.network.check_conservation()
            self.network.check_credit_invariants()
        if self.validation is not None:
            self.validation.after_cycle(self.network)
        if self.telemetry is not None:
            self.telemetry.after_cycle(self.network)

    def _run_cycles(self, cycles: int) -> None:
        for _ in range(cycles):
            self._step()

    def _delivered_sample(self) -> List:
        # Sinks collect the measured subsequence at ejection time, so
        # this is a concatenation, not a rescan of every delivery.
        packets: List = []
        for sink in self.network.sinks:
            packets.extend(sink.delivered_measured)
        return packets

    def _sample_complete(self, sample_size: int) -> bool:
        return self.network.total_measured_ejected() >= sample_size


def simulate(
    config: SimConfig,
    measurement: Optional[MeasurementConfig] = None,
    check_invariants: bool = False,
    checked: Union[ValidationSuite, bool, None] = None,
    telemetry: Union[TelemetrySession, TelemetryConfig, bool, None] = None,
) -> RunResult:
    """Convenience wrapper: build a :class:`Simulator` and run it.

    .. deprecated:: kept as a thin shim; prefer
       :meth:`repro.runtime.Experiment.point`, which validates the
       config, can serve the result from cache, and batches with other
       points across worker processes.
    """
    return Simulator(
        config, measurement, check_invariants, checked, telemetry
    ).run()
