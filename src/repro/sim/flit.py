"""Packets and flits.

A packet is the routing/allocation unit; it is segmented into flits (the
flow-control unit).  Following the paper, the head flit carries the
destination and triggers routing and (virtual-channel) allocation; body
flits and the tail flit inherit the resources the head acquired; the
tail releases them.  The ``vcid`` field is rewritten at each hop to the
output VC allocated there (Section 3.1).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import List, Optional


class FlitType(enum.Enum):
    HEAD = "head"
    BODY = "body"
    TAIL = "tail"
    #: Single-flit packets carry both roles.
    HEAD_TAIL = "head_tail"

    @property
    def is_head(self) -> bool:
        return self in (FlitType.HEAD, FlitType.HEAD_TAIL)

    @property
    def is_tail(self) -> bool:
        return self in (FlitType.TAIL, FlitType.HEAD_TAIL)


_packet_ids = itertools.count()


@dataclass(slots=True)
class Packet:
    """A multi-flit message.

    Attributes
    ----------
    source, destination:
        Node ids in the network.
    length:
        Number of flits (the paper uses 5-flit packets).
    creation_cycle:
        Cycle at which the packet entered the source queue; latency is
        measured from here to the ejection of the tail flit.
    """

    source: int
    destination: int
    length: int
    creation_cycle: int
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    measured: bool = True
    #: Cycle the head flit entered the source router (set by the source).
    injection_cycle: Optional[int] = None
    ejection_cycle: Optional[int] = None

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError(f"packet length must be >= 1, got {self.length}")
        if self.source == self.destination:
            raise ValueError("packet source and destination must differ")

    @property
    def latency(self) -> int:
        """Creation-to-ejection latency; raises if not yet delivered."""
        if self.ejection_cycle is None:
            raise ValueError(f"packet {self.packet_id} not yet delivered")
        return self.ejection_cycle - self.creation_cycle

    @property
    def queueing_latency(self) -> int:
        """Cycles spent waiting at the source before the head injected."""
        if self.injection_cycle is None:
            raise ValueError(f"packet {self.packet_id} not yet injected")
        return self.injection_cycle - self.creation_cycle

    @property
    def network_latency(self) -> int:
        """In-network portion: head injection to tail ejection."""
        if self.ejection_cycle is None:
            raise ValueError(f"packet {self.packet_id} not yet delivered")
        if self.injection_cycle is None:
            raise ValueError(f"packet {self.packet_id} not yet injected")
        return self.ejection_cycle - self.injection_cycle

    def make_flits(self) -> List["Flit"]:
        """Segment the packet into its flit sequence."""
        if self.length == 1:
            return [Flit(self, FlitType.HEAD_TAIL, 0)]
        flits = [Flit(self, FlitType.HEAD, 0)]
        flits.extend(Flit(self, FlitType.BODY, i) for i in range(1, self.length - 1))
        flits.append(Flit(self, FlitType.TAIL, self.length - 1))
        return flits


@dataclass(slots=True)
class Flit:
    """One flow-control unit of a packet.

    ``vcid`` is the virtual-channel id field in the flit header; routers
    rewrite it to the allocated output VC as the flit leaves (it is the
    VC the flit will occupy at the *next* hop).

    ``is_head``/``is_tail`` are decoded once at construction: the hot
    paths (buffer writes, ejection, allocation eligibility) test them
    every cycle, so a plain attribute beats re-deriving them from
    ``flit_type`` each time.
    """

    packet: Packet
    flit_type: FlitType
    index: int
    vcid: int = 0
    is_head: bool = field(init=False)
    is_tail: bool = field(init=False)

    def __post_init__(self) -> None:
        self.is_head = self.flit_type.is_head
        self.is_tail = self.flit_type.is_tail

    @property
    def destination(self) -> int:
        return self.packet.destination

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Flit(pkt={self.packet.packet_id}, {self.flit_type.value}, "
            f"idx={self.index}, vc={self.vcid})"
        )
