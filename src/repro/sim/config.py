"""Simulation configuration.

Defaults follow Section 5 of the paper: an 8x8 mesh, dimension-ordered
routing, uniform random traffic from constant-rate sources, 5-flit
packets, 1-cycle flit propagation, credit-based flow control.

Credits dispatch at switch-grant time (flit read-out) and propagate for
``credit_propagation`` cycles.  The resulting credit loops -- 5 cycles
for the wormhole and speculative VC routers, 6 for the non-speculative
VC router, 3 for the single-cycle model, 8 with Figure 18's 4-cycle
credit propagation -- carry the same per-router-type deltas as the
paper's turnaround numbers (4/5/2/7, Section 5.2) and reproduce its
measured zero-load latencies, including the one extra cycle of the
speculative router when 4-flit VC buffers do not cover the loop
(footnote 15).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..telemetry.config import TelemetryConfig


class RouterKind(enum.Enum):
    """The router microarchitectures simulated in Section 5 (plus VCT)."""

    WORMHOLE = "wormhole"
    VIRTUAL_CHANNEL = "virtual_channel"
    SPECULATIVE_VC = "speculative_vc"
    #: Unit-latency baselines of Section 5.2 (the "C" simulator).
    SINGLE_CYCLE_WORMHOLE = "single_cycle_wormhole"
    SINGLE_CYCLE_VC = "single_cycle_vc"
    #: Virtual cut-through (Related Work): wormhole datapath with
    #: whole-packet admission; needs buffers >= packet length.
    VIRTUAL_CUT_THROUGH = "virtual_cut_through"

    @property
    def is_single_cycle(self) -> bool:
        return self in (
            RouterKind.SINGLE_CYCLE_WORMHOLE,
            RouterKind.SINGLE_CYCLE_VC,
        )

    @property
    def uses_vcs(self) -> bool:
        return self in (
            RouterKind.VIRTUAL_CHANNEL,
            RouterKind.SPECULATIVE_VC,
            RouterKind.SINGLE_CYCLE_VC,
        )

    @property
    def default_credit_pipeline(self) -> int:
        """Extra credit-processing cycles in the upstream router.

        Zero by default for every router kind: credits dispatch at
        switch-grant time and are checked combinationally at switch
        allocation, so the turnaround difference between router types
        emerges from their pipeline depths (the non-speculative VC
        router's switch-allocation stage sits one cycle deeper, giving
        it the one-cycle-longer credit loop of Section 5.2).  Raise this
        to model slower credit processing.
        """
        return 0


#: Largest per-port VC count :meth:`SimConfig.validate` accepts: beyond
#: this the p*v-input separable allocator leaves Table 1's modelled
#: range and the simulated arbitration is no longer meaningful.
MAX_ARBITED_VCS = 64


@dataclass
class SimConfig:
    """Full parameter set for one simulation run."""

    router_kind: RouterKind = RouterKind.WORMHOLE
    mesh_radix: int = 8
    #: VCs per physical channel (ignored by wormhole routers).
    num_vcs: int = 1
    #: Flit buffers per *virtual channel* (wormhole: per input port).
    buffers_per_vc: int = 8
    packet_length: int = 5
    #: Offered load as a fraction of network capacity (the paper's x axis).
    injection_fraction: float = 0.1
    #: Flit channel propagation delay in cycles.
    flit_propagation: int = 1
    #: Credit channel propagation delay in cycles (Figure 18 sweeps this).
    credit_propagation: int = 1
    #: Credit processing cycles; None = the router kind's default.
    credit_pipeline: Optional[int] = None
    #: Extra allocation-pipeline stages for VC-family routers: the delay
    #: model prescribes these when the (combined) VC allocator straddles
    #: cycle boundaries at high VC counts (Figure 11: the 5-stage
    #: non-speculative router at v=16, the 4-stage speculative one at
    #: v=32).  Each extra stage delays a head's allocation eligibility
    #: by one cycle; body flits pipeline behind the head as usual.
    va_extra_cycles: int = 0
    traffic_pattern: str = "uniform"
    #: "constant" (paper), "bernoulli", or "bursty" (on/off Markov).
    injection_process: str = "constant"
    #: Mean packets per burst for the bursty process.
    burst_length: float = 8.0
    arbiter_kind: str = "matrix"
    #: Allocation strategy for VC-router switch/VC allocators:
    #: "separable" (the paper's two-stage design) or "maximum" (exact
    #: matching -- the efficiency upper bound, for ablations).
    allocator_kind: str = "separable"
    #: Speculation priority in the speculative router: "conservative"
    #: (the paper's -- non-speculative requests always win) or "equal"
    #: (ablation: speculation competes head-to-head and can displace
    #: certain traffic).
    speculation_priority: str = "conservative"
    #: Routing function: "xy" (the paper's dimension order), "yx", or
    #: "o1turn" (per-packet XY/YX with VC classes; VC routers on a mesh).
    routing_function: str = "xy"
    #: Topology: "mesh" (the paper's) or "torus" (wrap links + dateline
    #: VC classes; VC routers only).
    topology: str = "mesh"
    seed: int = 1
    #: Simulation stepper: "fast" (event wheel + activity tracking) or
    #: "reference" (the original full-scan stepper).  Both are
    #: cycle-for-cycle bit-identical for a fixed seed; "reference" is
    #: kept as the oracle baseline for differential testing.
    stepper: str = "fast"
    #: Streaming observability (:mod:`repro.telemetry`).  ``None`` (the
    #: default) records nothing and costs nothing; a
    #: :class:`~repro.telemetry.TelemetryConfig` attaches a telemetry
    #: session whose summary rides on the run result.  Part of the
    #: config so the request travels through the result cache's content
    #: key and across worker processes; never affects simulated
    #: behaviour (enforced by the ``telemetry_on_vs_off`` oracle).
    telemetry: Optional[TelemetryConfig] = None

    def __post_init__(self) -> None:
        if isinstance(self.telemetry, dict):
            # Convenience for configs rebuilt from JSON/dicts.
            self.telemetry = TelemetryConfig(**self.telemetry)
        if self.telemetry is not None and not isinstance(
            self.telemetry, TelemetryConfig
        ):
            raise TypeError(
                f"telemetry must be a TelemetryConfig or None, "
                f"got {self.telemetry!r}"
            )
        if self.mesh_radix < 2:
            raise ValueError(f"mesh radix must be >= 2, got {self.mesh_radix}")
        if self.num_vcs < 1:
            raise ValueError(f"num_vcs must be >= 1, got {self.num_vcs}")
        if self.buffers_per_vc < 1:
            raise ValueError(
                f"buffers_per_vc must be >= 1, got {self.buffers_per_vc}"
            )
        if self.packet_length < 1:
            raise ValueError(f"packet_length must be >= 1, got {self.packet_length}")
        if self.injection_fraction < 0:
            raise ValueError(
                f"injection_fraction must be >= 0, got {self.injection_fraction}"
            )
        if self.flit_propagation < 1:
            raise ValueError("flit_propagation must be >= 1 cycle")
        if self.credit_propagation < 1:
            raise ValueError("credit_propagation must be >= 1 cycle")
        if not self.router_kind.uses_vcs and self.num_vcs != 1:
            raise ValueError(
                f"{self.router_kind.value} routers have a single queue per "
                f"input port; set num_vcs=1 (got {self.num_vcs})"
            )
        if self.router_kind.uses_vcs and self.num_vcs < 2:
            raise ValueError(
                "virtual-channel routers need num_vcs >= 2 "
                f"(got {self.num_vcs})"
            )
        if self.allocator_kind not in ("separable", "maximum"):
            raise ValueError(
                f"unknown allocator kind {self.allocator_kind!r}"
            )
        if self.speculation_priority not in ("conservative", "equal"):
            raise ValueError(
                f"unknown speculation priority {self.speculation_priority!r}"
            )
        if self.va_extra_cycles < 0:
            raise ValueError("va_extra_cycles must be >= 0")
        if self.va_extra_cycles and not self.router_kind.uses_vcs:
            raise ValueError(
                "va_extra_cycles models a deeper VC-allocation pipeline; "
                f"{self.router_kind.value} routers have no VA stage"
            )
        if self.va_extra_cycles and self.router_kind.is_single_cycle:
            raise ValueError(
                "single-cycle routers cannot have extra pipeline stages"
            )
        if self.routing_function not in ("xy", "yx", "o1turn", "adaptive"):
            raise ValueError(
                f"unknown routing function {self.routing_function!r}"
            )
        if self.topology not in ("mesh", "torus"):
            raise ValueError(f"unknown topology {self.topology!r}")
        if self.stepper not in ("fast", "reference"):
            raise ValueError(
                f"unknown stepper {self.stepper!r}; "
                "choose 'fast' or 'reference'"
            )
        if self.topology == "torus" and not self.router_kind.uses_vcs:
            raise ValueError(
                "wormhole routers deadlock on a torus (cyclic ring "
                "dependencies); use a VC router with dateline classes"
            )
        if (
            self.routing_function in ("o1turn", "adaptive")
            and not self.router_kind.uses_vcs
        ):
            raise ValueError(
                f"{self.routing_function} routing needs VC classes; "
                "use a VC router"
            )
        if (
            self.routing_function in ("o1turn", "adaptive")
            and self.topology == "torus"
        ):
            raise ValueError(
                f"{self.routing_function} is mesh-only (a torus would need "
                "additional VC classes on top of the datelines)"
            )

    def validate(self) -> "SimConfig":
        """Strict pre-flight validation for the experiment runtime.

        ``__post_init__`` keeps construction permissive enough for
        exploratory use (e.g. a zero injection rate for hand-injected
        traces); ``validate()`` adds the checks a sweep point must pass
        so misconfigurations fail at :class:`~repro.runtime.Experiment`
        entry with a clear message instead of deep inside
        :class:`~repro.sim.network.Network` or a router constructor.
        Returns ``self`` so call sites can chain.
        """
        # Re-run the construction checks: dataclasses are mutable, so a
        # config edited after creation may have drifted out of bounds.
        self.__post_init__()
        if not 0.0 < self.injection_fraction <= 1.0:
            raise ValueError(
                "injection_fraction is a fraction of network capacity and "
                f"must lie in (0, 1]; got {self.injection_fraction}"
            )
        if self.num_vcs > MAX_ARBITED_VCS:
            raise ValueError(
                f"num_vcs={self.num_vcs} exceeds the {MAX_ARBITED_VCS}-VC "
                "limit the separable allocator's arbiters are modelled "
                "for (Table 1's delay equations stop being meaningful)"
            )
        if (
            self.router_kind is RouterKind.VIRTUAL_CUT_THROUGH
            and self.buffers_per_vc < self.packet_length
        ):
            raise ValueError(
                "virtual cut-through admits whole packets and needs "
                f"buffers_per_vc >= packet_length "
                f"({self.buffers_per_vc} < {self.packet_length})"
            )
        if self.credit_pipeline is not None and self.credit_pipeline < 0:
            raise ValueError("credit_pipeline must be >= 0")
        return self

    @property
    def effective_credit_pipeline(self) -> int:
        if self.credit_pipeline is not None:
            if self.credit_pipeline < 0:
                raise ValueError("credit_pipeline must be >= 0")
            return self.credit_pipeline
        return self.router_kind.default_credit_pipeline

    @property
    def credit_channel_delay(self) -> int:
        """Delay parameter of the credit channel.

        The :class:`~repro.sim.channel.PipelinedChannel` adds one
        receiver-write cycle, so a credit sent at ST cycle ``t`` becomes
        usable at ``t + propagation + pipeline``.
        """
        return self.credit_propagation + self.effective_credit_pipeline - 1

    @property
    def buffers_per_port(self) -> int:
        """Total flit buffers per input port (the paper's figure captions)."""
        return self.num_vcs * self.buffers_per_vc


@dataclass
class MeasurementConfig:
    """Warm-up / sample-size parameters.

    The paper uses ``warmup_cycles=10_000`` and ``sample_packets=100_000``;
    the defaults here are scaled down so sweeps finish quickly, with
    :func:`paper_scale` providing the full-size settings.
    """

    warmup_cycles: int = 1_000
    sample_packets: int = 2_000
    #: Hard cap on total simulated cycles (saturated runs never drain).
    max_cycles: int = 60_000
    #: Give up waiting for the sample to drain this many cycles after
    #: injection of the sample completed.
    drain_cycles: int = 20_000

    def __post_init__(self) -> None:
        if self.warmup_cycles < 0:
            raise ValueError("warmup_cycles must be >= 0")
        if self.sample_packets < 1:
            raise ValueError("sample_packets must be >= 1")
        if self.max_cycles <= self.warmup_cycles:
            raise ValueError("max_cycles must exceed warmup_cycles")


def paper_scale() -> MeasurementConfig:
    """The paper's full-scale measurement parameters (Section 5)."""
    return MeasurementConfig(
        warmup_cycles=10_000,
        sample_packets=100_000,
        max_cycles=2_000_000,
        drain_cycles=200_000,
    )
