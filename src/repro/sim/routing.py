"""Routing functions.

The paper's simulations use dimension-ordered (XY) routing -- an
``R -> p`` routing function (the most general possible for deterministic
routing, footnote 14): the route computation returns a single output
*port*; the candidate output VCs are all the VCs of that port, and the
VC allocator chooses among them.

All routing functions here are topology-aware: on a torus they take the
shorter way around each ring (minimal routing, ties broken toward
EAST/SOUTH).  ``o1turn`` commits each packet to XY or YX order at
injection (load-balancing adversarial patterns like transpose) and
relies on the O1TURN VC classes in :mod:`repro.sim.dateline` for
deadlock freedom.
"""

from __future__ import annotations

from typing import Callable

from .topology import EAST, LOCAL, Mesh, NORTH, SOUTH, WEST

#: A routing function maps (mesh, current node, destination) -> output port.
RoutingFunction = Callable[[Mesh, int, int], int]

# Imported at module bottom (dateline imports this module's route
# functions lazily, so the cycle resolves); hoisted out of
# o1turn_route_for_packet to keep the import machinery off the hot path.


def _x_step(topo: Mesh, x: int, dx: int) -> int:
    """Port for one productive X hop (shortest way around on a torus)."""
    if not topo.has_wrap_links:
        return EAST if x < dx else WEST
    forward = (dx - x) % topo.k
    backward = (x - dx) % topo.k
    return EAST if forward <= backward else WEST


def _y_step(topo: Mesh, y: int, dy: int) -> int:
    """Port for one productive Y hop (shortest way around on a torus)."""
    if not topo.has_wrap_links:
        return SOUTH if y < dy else NORTH
    forward = (dy - y) % topo.k   # SOUTH is increasing y
    backward = (y - dy) % topo.k
    return SOUTH if forward <= backward else NORTH


def dimension_order_route(mesh: Mesh, node: int, destination: int) -> int:
    """XY dimension-order routing: correct X first, then Y, then eject."""
    if node == destination:
        return LOCAL
    x, y = mesh.coordinates(node)
    dx, dy = mesh.coordinates(destination)
    if x != dx:
        return _x_step(mesh, x, dx)
    return _y_step(mesh, y, dy)


def yx_route(mesh: Mesh, node: int, destination: int) -> int:
    """YX dimension-order routing (the transposed variant)."""
    if node == destination:
        return LOCAL
    x, y = mesh.coordinates(node)
    dx, dy = mesh.coordinates(destination)
    if y != dy:
        return _y_step(mesh, y, dy)
    return _x_step(mesh, x, dx)


def route_path(
    mesh: Mesh, source: int, destination: int,
    routing: RoutingFunction = dimension_order_route,
) -> list:
    """Full port sequence from source to ejection (for tests/analysis)."""
    if source == destination:
        return [LOCAL]
    path = []
    node = source
    for _ in range(2 * mesh.k + 1):
        port = routing(mesh, node, destination)
        path.append(port)
        if port == LOCAL:
            return path
        node = mesh.neighbor(node, port)
        if node is None:
            raise AssertionError("routing function walked off the mesh")
    raise AssertionError("routing function did not converge")


def productive_ports(mesh: Mesh, node: int, destination: int) -> list:
    """Minimal (productive) output ports toward a destination.

    On a mesh this is one or two ports (one per uncorrected dimension);
    the basis of minimal adaptive routing.  Returns ``[LOCAL]`` at the
    destination.
    """
    if node == destination:
        return [LOCAL]
    x, y = mesh.coordinates(node)
    dx, dy = mesh.coordinates(destination)
    ports = []
    if x != dx:
        ports.append(_x_step(mesh, x, dx))
    if y != dy:
        ports.append(_y_step(mesh, y, dy))
    return ports


def o1turn_route_for_packet(mesh: Mesh, node: int, packet) -> int:
    """Route one packet under its committed O1TURN dimension order."""
    if o1turn_choice(packet) == "yx":
        return yx_route(mesh, node, packet.destination)
    return dimension_order_route(mesh, node, packet.destination)


def make_routing_function(name: str) -> RoutingFunction:
    """Factory: ``"xy"`` (paper default), ``"yx"``, or ``"o1turn"``.

    ``o1turn`` cannot be expressed as a plain (mesh, node, destination)
    function -- the choice is per packet -- so routers special-case it;
    this factory returns a marker raising if called directly.
    """
    if name == "xy":
        return dimension_order_route
    if name == "yx":
        return yx_route
    if name in ("o1turn", "adaptive"):
        def _needs_router_state(mesh: Mesh, node: int, destination: int) -> int:
            raise TypeError(
                f"{name} routing is resolved inside the routers (per-packet "
                "choice / per-VC congestion state), not as a plain function"
            )

        return _needs_router_state
    raise ValueError(f"unknown routing function {name!r}")


from .dateline import o1turn_choice  # noqa: E402  (see note above)
