"""Textual network state snapshots for debugging and teaching.

:func:`occupancy_map` renders per-node buffer occupancy as an ASCII heat
map of the mesh; :func:`describe_router` dumps one router's VC states.
Used interactively when a simulation behaves unexpectedly ("where is
everything stuck?") -- and by the congestion examples to *show* hotspot
formation rather than assert it.

:func:`state_digest` condenses every router's microarchitectural state
(VC states, routes, buffered flits, credits, held ports/VCs, the
struct-of-arrays bitmasks, and channel in-flight contents) into one hex
digest.  The high-load differential battery compares digests across
steppers: two runs that agree on metrics but diverge in buffered state
still fail.
"""

from __future__ import annotations

import hashlib
from typing import List

from .network import Network
from .routers.base import BaseRouter, VCState
from .topology import PORT_NAMES

#: Occupancy-fraction thresholds and their glyphs, light to heavy.
_GLYPHS = ((0.0, "."), (0.25, "-"), (0.5, "+"), (0.75, "#"), (1.0, "@"))


def _glyph(fraction: float) -> str:
    glyph = _GLYPHS[0][1]
    for threshold, candidate in _GLYPHS:
        if fraction >= threshold and fraction > 0:
            glyph = candidate
    return glyph


def occupancy_map(network: Network) -> str:
    """ASCII heat map of buffer occupancy across the mesh.

    Each node shows the fill fraction of its input buffers:
    ``.`` empty, ``-`` <=25%, ``+`` <=50%, ``#`` <=75%, ``@`` full.
    """
    k = network.mesh.k
    lines = [f"cycle {network.cycle}: buffer occupancy ({k}x{k})"]
    for y in range(k):
        row = []
        for x in range(k):
            router = network.routers[network.mesh.node_at(x, y)]
            capacity = sum(
                ivc.buffer.capacity
                for port_vcs in router.input_vcs
                for ivc in port_vcs
            )
            used = router.buffered_flits()
            row.append(_glyph(used / capacity if capacity else 0.0))
        lines.append(" ".join(row))
    legend = ", ".join(f"{g} >= {t:.0%}" for t, g in _GLYPHS[1:])
    lines.append(f"(. empty; {legend})")
    return "\n".join(lines)


def describe_router(router: BaseRouter) -> str:
    """One router's input-VC states, routes, and buffer fills."""
    lines = [f"router {router.node}:"]
    for port, port_vcs in enumerate(router.input_vcs):
        for ivc in port_vcs:
            if ivc.state is VCState.IDLE and not ivc.buffer:
                continue
            route = (
                PORT_NAMES[ivc.route] if ivc.route is not None else "-"
            )
            lines.append(
                f"  in {PORT_NAMES[port]:6s} vc{ivc.vc}: "
                f"{ivc.state.name.lower():9s} route={route:6s} "
                f"outvc={ivc.out_vc if ivc.out_vc is not None else '-':>2} "
                f"buffered={len(ivc.buffer)}/{ivc.buffer.capacity}"
            )
    held = [
        f"{PORT_NAMES[out_port]}<-{PORT_NAMES[holder]}"
        for out_port, holder in enumerate(getattr(router, "port_held_by", []))
        if holder is not None
    ]
    if held:
        lines.append(f"  held ports: {', '.join(held)}")
    if len(lines) == 1:
        lines.append("  (idle)")
    return "\n".join(lines)


def state_digest(network: Network) -> str:
    """Hex digest of the network's complete microarchitectural state.

    Covers, per router: every input VC's state, route, output VC,
    readiness cycles and buffered ``(packet_id, flit_index)`` sequence;
    every output VC's holder and credit count; wormhole port holds;
    pending switch traversals; and the struct-of-arrays state bitmasks
    (so a mask that drifted from the per-VC states changes the digest
    even before a probe would catch it).  Channel in-flight contents
    (flits and credits, with arrival cycles) are included so two
    networks agree only if their wires match too.  Excludes stepper
    bookkeeping (sleep states, wheel buckets) -- the digest is for
    comparing *physical* state across steppers.
    """
    parts: List[object] = [network.cycle]
    for router in network.routers:
        ivcs = []
        for port_vcs in router.input_vcs:
            for ivc in port_vcs:
                ivcs.append((
                    ivc.state.name, ivc.route, ivc.out_vc,
                    ivc.routing_ready, ivc.va_ready,
                    tuple(
                        (f.packet.packet_id, f.index)
                        for f in ivc.buffer
                    ),
                ))
        ovcs = [
            (ovc.held_by, ovc.credits.available)
            for port_vcs in router.output_vcs
            for ovc in port_vcs
        ]
        parts.append((
            router.node,
            tuple(ivcs),
            tuple(ovcs),
            tuple(getattr(router, "port_held_by", ())),
            tuple(router.pending_st),
            router._routing_mask,
            router._va_mask,
            router._active_mask,
        ))
        for channel in router.output_channels:
            if channel is not None:
                parts.append(tuple(
                    (arrival, flit.packet.packet_id, flit.index)
                    for arrival, flit in channel._in_flight
                ))
        for channel in router.credit_channels:
            if channel is not None:
                parts.append(tuple(channel._in_flight))
    return hashlib.sha256(repr(parts).encode()).hexdigest()


def busiest_routers(network: Network, count: int = 5) -> List[BaseRouter]:
    """The ``count`` routers holding the most buffered flits."""
    return sorted(
        network.routers, key=lambda r: r.buffered_flits(), reverse=True
    )[:count]
