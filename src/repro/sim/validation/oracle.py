"""Differential oracles: compute the same answer two ways and diff.

Each oracle runs two configurations (or two execution paths) that must
agree -- exactly, or up to a stated structural relation -- and returns
an :class:`OracleReport` listing every check made and every mismatch
found:

* :func:`oracle_spec_vs_nonspec` -- the speculative and non-speculative
  VC routers on identical seeds: both must pass every invariant probe,
  deliver the full sample, and satisfy the paper's structural relations
  (the speculative router's shallower pipeline means lower latency; only
  it issues speculative grants).
* :func:`oracle_serial_vs_parallel` -- the same sweep through the
  serial backend and every parallel backend (chunked work-stealing
  process pool, rank-style ssh loopback) must produce bit-identical
  curves (each point is a pure function of config + seed).
* :func:`oracle_cached_vs_uncached` -- a point served from the result
  cache must equal the freshly executed one, whichever backend wrote
  the entry.
* :func:`oracle_fast_vs_reference` -- the event-driven fast stepper and
  the original full-scan reference stepper must be cycle-for-cycle
  bit-identical: same :class:`RunResult` and the same per-sink delivery
  history (packet ids, sources, destinations, creation/injection/
  ejection cycles) across seeded random configurations covering every
  router kind, traffic pattern and injection process.

These are coarse end-to-end checks that complement the per-cycle probes
of :mod:`repro.sim.validation.probes`: a bug that preserves every local
invariant but changes results between equivalent execution paths still
gets caught here.
"""

from __future__ import annotations

import itertools
import tempfile
from dataclasses import dataclass, field, fields as dataclass_fields, replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..config import MeasurementConfig, RouterKind, SimConfig
from ..metrics import RunResult


@dataclass(frozen=True)
class Mismatch:
    """One disagreement between the two sides of an oracle."""

    what: str
    lhs: Any
    rhs: Any

    def __str__(self) -> str:
        return f"{self.what}: {self.lhs!r} != {self.rhs!r}"


@dataclass
class OracleReport:
    """Outcome of one differential oracle."""

    name: str
    lhs_label: str
    rhs_label: str
    checks: int = 0
    mismatches: List[Mismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def compare(self, what: str, lhs: Any, rhs: Any) -> bool:
        """Record one equality check; returns whether it held."""
        self.checks += 1
        if lhs != rhs:
            self.mismatches.append(Mismatch(what, lhs, rhs))
            return False
        return True

    def expect(self, condition: bool, what: str,
               lhs: Any = None, rhs: Any = None) -> bool:
        """Record one boolean structural check."""
        self.checks += 1
        if not condition:
            self.mismatches.append(Mismatch(what, lhs, rhs))
        return condition

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "lhs": self.lhs_label,
            "rhs": self.rhs_label,
            "ok": self.ok,
            "checks": self.checks,
            "mismatches": [str(m) for m in self.mismatches],
        }

    def describe(self) -> str:
        status = "ok" if self.ok else "FAILED"
        lines = [
            f"oracle {self.name} [{self.lhs_label} vs {self.rhs_label}]: "
            f"{status} ({self.checks} checks)"
        ]
        for mismatch in self.mismatches:
            lines.append(f"  mismatch {mismatch}")
        return "\n".join(lines)


def diff_run_results(report: OracleReport, lhs: RunResult, rhs: RunResult,
                     label: str = "point") -> None:
    """Field-by-field comparison of two run results into ``report``.

    Equality already excludes wall-clock time and validation summaries
    (``compare=False`` fields), so two runs of the same point -- checked
    or not, cached or not, serial or parallel -- must diff clean.
    """
    if report.compare(label, lhs, rhs):
        return
    # Unequal: replace the single coarse mismatch with per-field detail.
    report.mismatches.pop()
    for f in dataclass_fields(RunResult):
        if not f.compare:
            continue
        report.compare(
            f"{label}.{f.name}", getattr(lhs, f.name), getattr(rhs, f.name)
        )


#: Small-but-nontrivial measurement scale the oracles default to.
ORACLE_MEASUREMENT = MeasurementConfig(
    warmup_cycles=150, sample_packets=200, max_cycles=20_000,
    drain_cycles=10_000,
)


def _tiny_config(kind: RouterKind, **overrides) -> SimConfig:
    defaults: Dict[str, Any] = dict(
        router_kind=kind,
        mesh_radix=4,
        num_vcs=2 if kind.uses_vcs else 1,
        buffers_per_vc=4,
        injection_fraction=0.2,
        seed=11,
    )
    defaults.update(overrides)
    return SimConfig(**defaults)


def oracle_spec_vs_nonspec(
    measurement: Optional[MeasurementConfig] = None,
    *,
    load: float = 0.2,
    seed: int = 11,
    mesh_radix: int = 4,
    num_vcs: int = 2,
) -> OracleReport:
    """Speculative vs non-speculative VC router on identical seeds."""
    from ..engine import simulate

    measurement = measurement or ORACLE_MEASUREMENT
    report = OracleReport(
        "spec_vs_nonspec", "speculative_vc", "virtual_channel"
    )
    spec_cfg = _tiny_config(
        RouterKind.SPECULATIVE_VC, injection_fraction=load, seed=seed,
        mesh_radix=mesh_radix, num_vcs=num_vcs,
    )
    nonspec_cfg = replace(spec_cfg, router_kind=RouterKind.VIRTUAL_CHANNEL)
    spec = simulate(spec_cfg, measurement, checked=True)
    nonspec = simulate(nonspec_cfg, measurement, checked=True)

    report.expect(
        spec.validation is not None and spec.validation["ok"],
        "speculative run passes every invariant probe",
        spec.validation and spec.validation["violations"], [],
    )
    report.expect(
        nonspec.validation is not None and nonspec.validation["ok"],
        "non-speculative run passes every invariant probe",
        nonspec.validation and nonspec.validation["violations"], [],
    )
    report.expect(
        not spec.saturated and not nonspec.saturated,
        "neither run saturates at this load",
        spec.saturated, nonspec.saturated,
    )
    report.compare(
        "sampled packets", spec.sample_packets, nonspec.sample_packets
    )
    report.expect(
        spec.average_latency < nonspec.average_latency,
        "speculative pipeline (3 stages) beats non-speculative (4 stages)",
        spec.average_latency, nonspec.average_latency,
    )
    report.expect(
        spec.spec_grants > 0,
        "speculative router issued speculative grants",
        spec.spec_grants, "> 0",
    )
    report.expect(
        nonspec.spec_grants == 0,
        "non-speculative router issued no speculative grants",
        nonspec.spec_grants, 0,
    )
    return report


def oracle_serial_vs_parallel(
    measurement: Optional[MeasurementConfig] = None,
    *,
    config: Optional[SimConfig] = None,
    loads=(0.1, 0.2, 0.3),
) -> OracleReport:
    """``Experiment.sweep`` on the serial backend vs every other backend.

    Each point is a pure function of config + seed, so the chunked
    work-stealing process pool and the rank-style ssh fabric (loopback
    mode, coordinating through a throwaway shared cache directory) must
    both reproduce the serial curve bit for bit.
    """
    from ...runtime.backends import ProcessBackend, SSHBackend
    from ...runtime.experiment import Experiment

    measurement = measurement or ORACLE_MEASUREMENT
    config = config or _tiny_config(RouterKind.SPECULATIVE_VC)
    report = OracleReport(
        "serial_vs_parallel", "backend=serial", "backend=process/ssh"
    )
    serial = Experiment(measurement, backend="serial").sweep(
        config, label="serial", loads=loads
    )

    def compare_backend(name: str, parallel) -> None:
        report.compare(
            f"{name} point count", len(serial.points), len(parallel.points)
        )
        for i, (lhs, rhs) in enumerate(zip(serial.points, parallel.points)):
            diff_run_results(report, lhs, rhs, label=f"{name} point[{i}]")

    compare_backend(
        "process",
        Experiment(measurement, backend=ProcessBackend(2)).sweep(
            config, label="process", loads=loads
        ),
    )
    with tempfile.TemporaryDirectory(prefix="repro-oracle-ssh-") as shared:
        compare_backend(
            "ssh",
            Experiment(
                measurement, backend=SSHBackend(world=2), cache=shared
            ).sweep(config, label="ssh", loads=loads),
        )
    return report


def oracle_cached_vs_uncached(
    cache_dir: Union[str, Path, None] = None,
    measurement: Optional[MeasurementConfig] = None,
    *,
    config: Optional[SimConfig] = None,
) -> OracleReport:
    """A cache-served result must equal the freshly executed one.

    Runs the fresh-then-cached round trip once per execution backend
    (serial, chunked process pool, rank-style ssh loopback): every
    backend streams results into the same content-addressed store, so a
    cache entry written by any of them must be served back bit-identical
    to a fresh execution.  ``cache_dir=None`` uses throwaway temporary
    directories (one per backend).
    """
    from ...runtime.backends import ProcessBackend, SSHBackend
    from ...runtime.experiment import Experiment

    measurement = measurement or ORACLE_MEASUREMENT
    config = config or _tiny_config(RouterKind.SPECULATIVE_VC)
    report = OracleReport("cached_vs_uncached", "fresh run", "cache hit")
    backends = (
        ("serial", lambda: "serial"),
        ("process", lambda: ProcessBackend(2)),
        ("ssh", lambda: SSHBackend(world=2)),
    )

    def _run(name: str, make_backend, directory: Union[str, Path]) -> None:
        fresh_exp = Experiment(
            measurement, backend=make_backend(), cache=directory
        )
        fresh = fresh_exp.point(config)
        report.expect(
            fresh_exp.stats.cache_hits == 0,
            f"[{name}] first run executes (cold cache)",
            fresh_exp.stats.cache_hits, 0,
        )
        cached_exp = Experiment(
            measurement, backend=make_backend(), cache=directory
        )
        cached = cached_exp.point(config)
        report.expect(
            cached_exp.stats.cache_hits == 1,
            f"[{name}] second run is served from the cache",
            cached_exp.stats.cache_hits, 1,
        )
        diff_run_results(report, fresh, cached, label=f"[{name}] result")

    for name, make_backend in backends:
        if cache_dir is None:
            with tempfile.TemporaryDirectory(prefix="repro-oracle-") as tmp:
                _run(name, make_backend, tmp)
        else:
            _run(name, make_backend, Path(cache_dir) / name)
    return report


def oracle_fast_vs_reference(
    measurement: Optional[MeasurementConfig] = None,
    *,
    seed: int = 0,
    cases: int = 10,
) -> OracleReport:
    """The fast stepper vs the reference stepper, bit for bit.

    Both steppers advance the same synchronous machine; the fast one
    only skips work that is provably a no-op (idle router phases, empty
    channels, non-firing constant-rate generators).  This oracle runs
    ``cases`` seeded random configurations -- drawn from the same
    generator as the property suite, so every router kind, topology,
    traffic pattern and injection process appears -- once per stepper,
    and diffs the full :class:`RunResult` plus the per-sink delivery
    history down to individual packet ids and ejection cycles.
    """
    from .. import flit as flit_module
    from ..engine import Simulator
    from .proptest import CASE_MEASUREMENT, generate_cases

    measurement = measurement or CASE_MEASUREMENT
    report = OracleReport(
        "fast_vs_reference", "stepper=fast", "stepper=reference"
    )

    def _run(config: SimConfig, stepper: str):
        # Packet ids come from a module-global counter and o1turn keys
        # its route choice off the id, so both sides must observe the
        # same id sequence: reset the counter before each run.
        flit_module._packet_ids = itertools.count()
        simulator = Simulator(replace(config, stepper=stepper), measurement)
        result = simulator.run()
        deliveries = [
            [
                (
                    packet.packet_id,
                    packet.source,
                    packet.destination,
                    packet.length,
                    packet.creation_cycle,
                    packet.injection_cycle,
                    packet.ejection_cycle,
                    packet.measured,
                )
                for packet in sink.delivered
            ]
            for sink in simulator.network.sinks
        ]
        return result, deliveries

    for case in generate_cases(seed, cases):
        label = (
            f"case[{case.case_id}] {case.config.router_kind.value} "
            f"{case.config.traffic_pattern}/{case.config.injection_process}"
        )
        fast_result, fast_deliveries = _run(case.config, "fast")
        ref_result, ref_deliveries = _run(case.config, "reference")
        diff_run_results(report, fast_result, ref_result, label=label)
        report.compare(
            f"{label} per-sink deliveries", fast_deliveries, ref_deliveries
        )
    return report


def oracle_telemetry_on_vs_off(
    measurement: Optional[MeasurementConfig] = None,
    *,
    configs: Optional[List[SimConfig]] = None,
) -> OracleReport:
    """Telemetry must observe without perturbing: bit-identical results.

    Runs each configuration twice -- plain, and with a telemetry session
    attached (aggressive sampling so every collector path executes) --
    and diffs the full :class:`RunResult` plus the per-sink delivery
    history.  ``RunResult.telemetry`` is a ``compare=False`` field, so
    any mismatch here is a real perturbation of the simulated machine
    (e.g. a collector waking a sleeping router or consuming RNG draws),
    not the summary itself.
    """
    from ...telemetry.config import TelemetryConfig
    from .. import flit as flit_module
    from ..engine import Simulator

    measurement = measurement or ORACLE_MEASUREMENT
    report = OracleReport(
        "telemetry_on_vs_off", "telemetry=off", "telemetry=on"
    )
    if configs is None:
        configs = [
            _tiny_config(RouterKind.SPECULATIVE_VC),
            _tiny_config(RouterKind.VIRTUAL_CHANNEL, seed=7),
            _tiny_config(RouterKind.WORMHOLE, injection_fraction=0.15),
            # The fast stepper's sleeping routers are the risk surface:
            # a low-load run where sampling must not wake anything.
            _tiny_config(
                RouterKind.SPECULATIVE_VC, injection_fraction=0.05,
                traffic_pattern="hotspot", seed=3,
            ),
        ]
    telemetry = TelemetryConfig(
        sample_period=1, window_cycles=32, max_windows=8, capture_trace=True
    )

    def _run(config: SimConfig, with_telemetry: bool):
        flit_module._packet_ids = itertools.count()
        simulator = Simulator(
            config, measurement,
            telemetry=telemetry if with_telemetry else False,
        )
        result = simulator.run()
        deliveries = [
            [
                (
                    packet.packet_id,
                    packet.source,
                    packet.destination,
                    packet.length,
                    packet.creation_cycle,
                    packet.injection_cycle,
                    packet.ejection_cycle,
                    packet.measured,
                )
                for packet in sink.delivered
            ]
            for sink in simulator.network.sinks
        ]
        return result, deliveries

    for config in configs:
        label = (
            f"{config.router_kind.value} load "
            f"{config.injection_fraction} seed {config.seed}"
        )
        plain_result, plain_deliveries = _run(config, with_telemetry=False)
        observed_result, observed_deliveries = _run(config, with_telemetry=True)
        diff_run_results(report, plain_result, observed_result, label=label)
        report.compare(
            f"{label} per-sink deliveries",
            plain_deliveries, observed_deliveries,
        )
        report.expect(
            observed_result.telemetry is not None
            and observed_result.telemetry.cycles_observed
            == observed_result.cycles_simulated,
            f"{label} telemetry observed every cycle",
            observed_result.telemetry
            and observed_result.telemetry.cycles_observed,
            observed_result.cycles_simulated,
        )
        report.expect(
            plain_result.telemetry is None,
            f"{label} plain run carries no telemetry",
            plain_result.telemetry, None,
        )
    return report


def run_all_oracles(
    measurement: Optional[MeasurementConfig] = None,
) -> List[OracleReport]:
    """Every differential oracle, at the default tiny scale."""
    return [
        oracle_spec_vs_nonspec(measurement),
        oracle_serial_vs_parallel(measurement),
        oracle_cached_vs_uncached(measurement=measurement),
        oracle_fast_vs_reference(),
        oracle_telemetry_on_vs_off(measurement),
    ]
