"""Seeded property-test generator: random configs under full probes.

Random-but-reproducible configurations drive short checked simulations:
every case runs with the complete invariant-probe suite attached, so
any generated corner (deep credit pipelines, single-flit buffers,
bursty injection, tori, adaptive routing, ...) that breaks a flow
control or allocation invariant fails loudly with the exact config in
the report.

Everything derives from one integer seed -- ``generate_cases(seed, n)``
always yields the same cases -- so a failure reported by CI reproduces
locally with::

    from repro.sim.validation.proptest import generate_cases, run_case
    run_case(generate_cases(seed, n)[k])
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..config import MeasurementConfig, RouterKind, SimConfig
from ..metrics import RunResult

#: Short but non-degenerate: enough cycles for credit loops to wrap and
#: several packet generations to overlap.
CASE_MEASUREMENT = MeasurementConfig(
    warmup_cycles=80, sample_packets=60, max_cycles=12_000,
    drain_cycles=6_000,
)


@dataclass(frozen=True)
class PropertyCase:
    """One generated case: a config plus its measurement scale."""

    case_id: int
    seed: int
    config: SimConfig
    measurement: MeasurementConfig = field(
        default_factory=lambda: CASE_MEASUREMENT
    )

    def describe(self) -> str:
        c = self.config
        return (
            f"case {self.case_id} (gen seed {self.seed}): "
            f"{c.router_kind.value} radix={c.mesh_radix} vcs={c.num_vcs} "
            f"buffers={c.buffers_per_vc} pkt={c.packet_length} "
            f"load={c.injection_fraction:.2f} {c.traffic_pattern}/"
            f"{c.injection_process} route={c.routing_function} "
            f"topo={c.topology} seed={c.seed}"
        )


def random_config(rng: random.Random) -> SimConfig:
    """One random valid configuration (tiny networks, varied corners)."""
    kind = rng.choice(list(RouterKind))
    num_vcs = rng.choice([2, 3, 4]) if kind.uses_vcs else 1
    packet_length = rng.choice([1, 2, 5])
    buffers = rng.choice([1, 2, 4, 8])
    if kind is RouterKind.VIRTUAL_CUT_THROUGH:
        buffers = max(buffers, packet_length)
    topology = (
        rng.choice(["mesh", "torus"]) if kind.uses_vcs else "mesh"
    )
    if topology == "torus":
        routing = rng.choice(["xy", "yx"])
    elif kind.uses_vcs:
        routing = rng.choice(["xy", "yx", "o1turn", "adaptive"])
    else:
        routing = rng.choice(["xy", "yx"])
    return SimConfig(
        router_kind=kind,
        mesh_radix=rng.choice([3, 4]),
        num_vcs=num_vcs,
        buffers_per_vc=buffers,
        packet_length=packet_length,
        injection_fraction=round(rng.uniform(0.05, 0.35), 2),
        credit_propagation=rng.choice([1, 1, 2]),
        traffic_pattern=rng.choice(["uniform", "transpose"]),
        injection_process=rng.choice(["constant", "bernoulli", "bursty"]),
        arbiter_kind=rng.choice(["matrix", "round_robin"]),
        speculation_priority=(
            rng.choice(["conservative", "equal"])
            if kind is RouterKind.SPECULATIVE_VC else "conservative"
        ),
        routing_function=routing,
        topology=topology,
        seed=rng.randrange(1, 10_000),
    )


def generate_cases(seed: int, count: int) -> List[PropertyCase]:
    """``count`` reproducible cases derived from ``seed``."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    rng = random.Random(seed)
    return [
        PropertyCase(case_id=i, seed=seed, config=random_config(rng))
        for i in range(count)
    ]


def run_case(case: PropertyCase) -> RunResult:
    """Run one case with the full probe suite (raises on violation)."""
    from ..engine import simulate

    return simulate(case.config, case.measurement, checked=True)


def run_property_suite(
    seed: int = 0,
    count: int = 10,
    *,
    fail_fast: bool = True,
) -> Dict[str, Any]:
    """Run ``count`` generated cases; summarise passes and failures.

    With ``fail_fast`` the first probe violation propagates (carrying
    the violating cycle and message); otherwise failing cases are
    collected into the summary's ``failures`` list.
    """
    cases = generate_cases(seed, count)
    passed = 0
    failures: List[Dict[str, Any]] = []
    for case in cases:
        try:
            result = run_case(case)
        except AssertionError as exc:
            if fail_fast:
                raise AssertionError(
                    f"{case.describe()}\n{exc}"
                ) from exc
            failures.append({"case": case.describe(), "error": str(exc)})
            continue
        summary: Optional[Dict[str, Any]] = result.validation
        if summary is None or not summary["ok"]:
            failure = {
                "case": case.describe(),
                "error": "validation summary reported violations",
                "violations": summary["violations"] if summary else None,
            }
            if fail_fast:
                raise AssertionError(repr(failure))
            failures.append(failure)
            continue
        passed += 1
    return {
        "seed": seed,
        "cases": len(cases),
        "passed": passed,
        "failures": failures,
        "ok": not failures,
    }
