"""The probe container the engine drives in checked mode."""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from .probes import InvariantViolation, Probe, Violation, default_probes


class ValidationSuite:
    """A set of invariant probes run against one simulation.

    Parameters
    ----------
    probes:
        The probes to run; :meth:`default` builds the standard set for
        a config.
    interval:
        Run the cycle probes every ``interval`` network steps (event
        probes always observe every event).  ``1`` checks every cycle.
    fail_fast:
        Raise :class:`InvariantViolation` on the first violation
        (default).  Otherwise violations accumulate and the run
        completes; read them from :attr:`violations` or the summary.
    snapshot_dir:
        When set, any violation carrying a snapshot also writes it to
        ``<snapshot_dir>/violation-cycle<NNN>.txt`` for offline
        inspection.
    """

    def __init__(
        self,
        probes: Sequence[Probe],
        *,
        interval: int = 1,
        fail_fast: bool = True,
        snapshot_dir: Union[str, Path, None] = None,
    ) -> None:
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        self.probes = list(probes)
        self.interval = interval
        self.fail_fast = fail_fast
        self.snapshot_dir = Path(snapshot_dir) if snapshot_dir else None
        self.violations: List[Violation] = []
        self.cycles_checked = 0
        self._steps_seen = 0
        self._attached = False

    @classmethod
    def default(cls, config, **kwargs) -> "ValidationSuite":
        """The standard checked-mode suite for ``config``."""
        return cls(default_probes(config), **kwargs)

    # ------------------------------------------------------------------

    def attach(self, network) -> None:
        if self._attached:
            raise RuntimeError("suite is already attached to a network")
        # Probes wrap generic-path methods (allocator proxies, sink
        # wraps); compiled step functions would bypass them.
        force = getattr(network, "force_generic_step", None)
        if force is not None:
            force("checked")
        for probe in self.probes:
            probe.bind(self)
            probe.attach(network)
        self._attached = True

    def detach(self, network) -> None:
        for probe in self.probes:
            probe.detach(network)
        self._attached = False

    def after_cycle(self, network) -> None:
        """Run the cycle probes on the settled end-of-step state."""
        self._steps_seen += 1
        if self._steps_seen % self.interval:
            return
        self.cycles_checked += 1
        cycle = network.cycle
        for probe in self.probes:
            probe.check(network, cycle)

    def finalize(self, network) -> Dict[str, Any]:
        """End-of-run probe checks, then the validation summary."""
        for probe in self.probes:
            probe.finalize(network)
        return self.summary()

    # ------------------------------------------------------------------

    def report(self, violation: Violation) -> None:
        """Record a violation (called by probes); raise when fail-fast."""
        self.violations.append(violation)
        if self.snapshot_dir is not None and violation.snapshot:
            self.snapshot_dir.mkdir(parents=True, exist_ok=True)
            path = self.snapshot_dir / f"violation-cycle{violation.cycle}.txt"
            path.write_text(str(violation) + "\n")
        if self.fail_fast:
            raise InvariantViolation(violation)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> Dict[str, Any]:
        """JSON-safe digest attached to ``RunResult.validation``."""
        return {
            "ok": self.ok,
            "cycles_checked": self.cycles_checked,
            "interval": self.interval,
            "probes": {probe.name: probe.checks for probe in self.probes},
            "violations": [v.to_dict() for v in self.violations],
        }


def resolve_checked(
    checked: Union["ValidationSuite", bool, None], config
) -> Optional["ValidationSuite"]:
    """Interpret the engine's ``checked`` argument.

    ``None``/``False`` disable validation; ``True`` builds the default
    suite for ``config``; a :class:`ValidationSuite` is used as given.
    """
    if checked is None or checked is False:
        return None
    if checked is True:
        return ValidationSuite.default(config)
    if isinstance(checked, ValidationSuite):
        return checked
    raise TypeError(
        f"checked must be a bool or ValidationSuite, got {checked!r}"
    )
