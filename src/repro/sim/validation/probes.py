"""Invariant probes for checked-mode simulation.

Two probe styles share one base class:

* *cycle probes* implement :meth:`Probe.check`, called by the
  :class:`~repro.sim.validation.suite.ValidationSuite` after every
  network step (or every ``interval`` steps) on the settled end-of-cycle
  state;
* *event probes* install lightweight wrappers at attach time (around the
  speculative switch allocator, around sink ejection) and report
  violations at the moment the illegal event happens, before the bad
  state can propagate.

Probes report through :meth:`Probe.fail`, which routes to the owning
suite: with ``fail_fast`` (the default) the first violation raises
:class:`InvariantViolation` out of the engine; otherwise violations
accumulate in the run's validation summary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..routers.base import VCState
from ..topology import LOCAL, OPPOSITE, PORT_NAMES


@dataclass(frozen=True)
class Violation:
    """One invariant violation: where, when, and what went wrong."""

    probe: str
    cycle: int
    message: str
    snapshot: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "probe": self.probe,
            "cycle": self.cycle,
            "message": self.message,
            "snapshot": self.snapshot,
        }

    def __str__(self) -> str:
        text = f"[{self.probe} @ cycle {self.cycle}] {self.message}"
        if self.snapshot:
            text += "\n" + self.snapshot
        return text


class InvariantViolation(AssertionError):
    """Raised in fail-fast checked mode on the first violation.

    Subclasses :class:`AssertionError` so existing "the simulator never
    asserts" call sites treat probe trips and engine self-checks alike.
    """

    def __init__(self, violation: Violation) -> None:
        super().__init__(str(violation))
        self.violation = violation


class Probe:
    """Base class: bind to a suite, attach to a network, check cycles."""

    name = "probe"

    def __init__(self) -> None:
        self.suite = None          # set by ValidationSuite.attach
        self.checks = 0            # how many times this probe validated

    def bind(self, suite) -> None:
        self.suite = suite

    def attach(self, network) -> None:
        """Precompute structures / install wrappers.  Default: nothing."""

    def detach(self, network) -> None:
        """Undo :meth:`attach`'s wrappers.  Default: nothing."""

    def check(self, network, cycle: int) -> None:
        """Validate the settled end-of-cycle state.  Default: nothing."""

    def finalize(self, network) -> None:
        """End-of-run validation.  Default: nothing."""

    def fail(self, cycle: int, message: str,
             snapshot: Optional[str] = None) -> None:
        self.suite.report(Violation(self.name, cycle, message, snapshot))


class FlitConservationProbe(Probe):
    """No flit is ever created or destroyed, network-wide or per router.

    Network-wide: ``injected == ejected + in flight`` (buffers + links +
    ejection channels).  Per router: flits accepted on input ports equal
    flits forwarded through the crossbar plus flits still buffered.
    """

    name = "flit_conservation"

    def __init__(self) -> None:
        super().__init__()
        self._routers: List[Tuple[int, Any, List[Any]]] = []

    def attach(self, network) -> None:
        self._routers = [
            (
                router.node,
                router.stats,
                [ivc.buffer for port_vcs in router.input_vcs
                 for ivc in port_vcs],
            )
            for router in network.routers
        ]

    def check(self, network, cycle: int) -> None:
        self.checks += 1
        total_buffered = 0
        for node, stats, buffers in self._routers:
            buffered = sum(map(len, buffers))
            total_buffered += buffered
            if stats.flits_received - stats.flits_forwarded != buffered:
                self.fail(
                    cycle,
                    f"router {node}: received {stats.flits_received} "
                    f"!= forwarded {stats.flits_forwarded} + buffered "
                    f"{buffered}",
                )
        on_links = sum(ch.occupancy for ch, _, _ in network._flit_links)
        ejecting = sum(ch.occupancy for ch, _ in network._ejection_links)
        in_flight = total_buffered + on_links + ejecting
        injected = network.total_flits_injected()
        ejected = network.total_flits_ejected()
        if injected != ejected + in_flight:
            self.fail(
                cycle,
                f"network: injected {injected} != ejected {ejected} + "
                f"in flight {in_flight}",
            )


class CreditConsistencyProbe(Probe):
    """Upstream credit counters mirror downstream free-buffer counts.

    For every (link, VC), at the settled end of a cycle::

        upstream credits available
        + flits in flight on the link (for this VC)
        + credits in flight on the reverse credit channel
        + flits buffered downstream
        - switch grants issued this cycle but not yet traversed

    must equal the buffer capacity.  The last term accounts for the
    "credit on read-out" convention: the credit for a granted flit's
    slot departs at grant time, one cycle before the flit pops.  The
    same identity is checked for each node's injection path (source
    credit views against the router's local input buffers).
    """

    name = "credit_consistency"

    def __init__(self) -> None:
        super().__init__()
        self._links: List[Tuple[Any, ...]] = []
        self._local: List[Tuple[Any, ...]] = []

    def attach(self, network) -> None:
        self._links = []
        routers = network.routers
        for node, port, neighbor in network.mesh.links():
            upstream = routers[node]
            downstream = routers[neighbor]
            dst_port = OPPOSITE[port]
            self._links.append((
                [ovc.credits for ovc in upstream.output_vcs[port]],
                upstream.output_channels[port]._in_flight,
                downstream.credit_channels[dst_port]._in_flight,
                [ivc.buffer for ivc in downstream.input_vcs[dst_port]],
                neighbor,
                dst_port,
                f"link {node}->{neighbor} ({PORT_NAMES[port]})",
            ))
        self._local = [
            (
                source.credits,
                router.credit_channels[LOCAL]._in_flight,
                [ivc.buffer for ivc in router.input_vcs[LOCAL]],
                source.node,
            )
            for source, router in zip(network.sources, network.routers)
        ]

    def check(self, network, cycle: int) -> None:
        self.checks += 1
        capacity = network.config.buffers_per_vc
        num_vcs = network.config.num_vcs
        vc_range = range(num_vcs)
        # Grants issued this cycle whose flits have not yet traversed,
        # keyed (node, input port, vc): their credits are already in
        # flight while the flit still occupies its buffer slot.
        pending: Dict[Tuple[int, int, int], int] = {}
        for router in network.routers:
            node = router.node
            for port, vc in router.pending_st:
                key = (node, port, vc)
                pending[key] = pending.get(key, 0) + 1

        for (credits, flit_flight, credit_flight, buffers, neighbor,
             dst_port, label) in self._links:
            in_flight = [0] * num_vcs
            for _, flit in flit_flight:
                in_flight[flit.vcid] += 1
            credits_in_flight = [0] * num_vcs
            for _, vc in credit_flight:
                credits_in_flight[vc] += 1
            for vc in vc_range:
                total = (
                    credits[vc].available
                    + in_flight[vc]
                    + credits_in_flight[vc]
                    + len(buffers[vc])
                    - pending.get((neighbor, dst_port, vc), 0)
                )
                if total != capacity:
                    self.fail(
                        cycle,
                        f"{label} vc {vc}: credits {credits[vc].available} "
                        f"+ in-flight flits {in_flight[vc]} + in-flight "
                        f"credits {credits_in_flight[vc]} + buffered "
                        f"{len(buffers[vc])} - granted "
                        f"{pending.get((neighbor, dst_port, vc), 0)} = "
                        f"{total}, expected capacity {capacity}",
                    )

        for credits, credit_flight, buffers, node in self._local:
            credits_in_flight = [0] * num_vcs
            for _, vc in credit_flight:
                credits_in_flight[vc] += 1
            for vc in vc_range:
                total = (
                    credits[vc].available
                    + credits_in_flight[vc]
                    + len(buffers[vc])
                    - pending.get((node, LOCAL, vc), 0)
                )
                if total != capacity:
                    self.fail(
                        cycle,
                        f"injection at node {node} vc {vc}: source credits "
                        f"{credits[vc].available} + in-flight credits "
                        f"{credits_in_flight[vc]} + buffered "
                        f"{len(buffers[vc])} - granted "
                        f"{pending.get((node, LOCAL, vc), 0)} = {total}, "
                        f"expected capacity {capacity}",
                    )


class VCExclusivityProbe(Probe):
    """Each output VC (or held wormhole port) belongs to one packet.

    VC-family routers: every held :class:`OutputVC` points back at an
    input VC whose allocated route/out_vc agree, and no input VC holds
    two output VCs.  Wormhole-family routers: the per-output hold state
    is mutually consistent with the holding input's route, and no input
    holds two output ports.
    """

    name = "vc_exclusivity"

    def __init__(self) -> None:
        super().__init__()
        self._vc_routers: List[Tuple[Any, List[Any], List[Any]]] = []
        self._wh_routers: List[Any] = []

    def attach(self, network) -> None:
        self._vc_routers = []
        self._wh_routers = []
        for router in network.routers:
            if hasattr(router, "port_held_by"):
                self._wh_routers.append(router)
            else:
                self._vc_routers.append((
                    router,
                    [ovc for port_vcs in router.output_vcs
                     for ovc in port_vcs],
                    [ivc for port_vcs in router.input_vcs
                     for ivc in port_vcs],
                ))

    def check(self, network, cycle: int) -> None:
        self.checks += 1
        for router in network.routers:
            self._check_masks(router, cycle)
        for router, ovcs, ivcs in self._vc_routers:
            self._check_vc(router, ovcs, ivcs, cycle)
        for router in self._wh_routers:
            self._check_wormhole(router, cycle)

    def _check_masks(self, router, cycle: int) -> None:
        """The struct-of-arrays state bitmasks agree with the per-VC
        states.

        The fast stepper's ``is_idle`` and the specialized step
        functions trust the masks; a desynchronized bit would silently
        skip (or double-process) a VC, so checked mode recomputes the
        masks from the object states every checked cycle.
        """
        routing = va = active = 0
        for ivc in router._all_ivcs:
            state = ivc.state
            if state is VCState.ROUTING:
                routing |= 1 << ivc.flat
            elif state is VCState.VC_ALLOC:
                va |= 1 << ivc.flat
            elif state is VCState.ACTIVE:
                active |= 1 << ivc.flat
        if (
            routing != router._routing_mask
            or va != router._va_mask
            or active != router._active_mask
        ):
            self.fail(
                cycle,
                f"router {router.node}: state bitmasks out of sync with "
                f"VC states: routing {router._routing_mask:#x} (expected "
                f"{routing:#x}), va {router._va_mask:#x} (expected "
                f"{va:#x}), active {router._active_mask:#x} (expected "
                f"{active:#x})",
            )

    def _check_vc(self, router, ovcs, ivcs, cycle: int) -> None:
        active = VCState.ACTIVE
        holders: Dict[Tuple[int, int], Tuple[int, int]] = {}
        for ovc in ovcs:
            holder = ovc.held_by
            if holder is None:
                continue
            if holder in holders:
                self.fail(
                    cycle,
                    f"router {router.node}: input VC {holder} holds two "
                    f"output VCs ({holders[holder]} and "
                    f"({ovc.port}, {ovc.vc}))",
                )
            holders[holder] = (ovc.port, ovc.vc)
            ivc = router.input_vcs[holder[0]][holder[1]]
            if (ivc.state is not active
                    or ivc.route != ovc.port or ivc.out_vc != ovc.vc):
                self.fail(
                    cycle,
                    f"router {router.node}: output VC "
                    f"({ovc.port}, {ovc.vc}) held by input {holder} but "
                    f"that VC is {ivc.state.name.lower()} with route="
                    f"{ivc.route} out_vc={ivc.out_vc}",
                )
        for ivc in ivcs:
            if ivc.state is active and ivc.out_vc is not None:
                ovc = router.output_vcs[ivc.route][ivc.out_vc]
                if ovc.held_by != (ivc.port, ivc.vc):
                    self.fail(
                        cycle,
                        f"router {router.node}: input VC "
                        f"({ivc.port}, {ivc.vc}) claims output VC "
                        f"({ivc.route}, {ivc.out_vc}) held by "
                        f"{ovc.held_by}",
                    )

    def _check_wormhole(self, router, cycle: int) -> None:
        seen_inputs: Dict[int, int] = {}
        for out_port, in_port in enumerate(router.port_held_by):
            if in_port is None:
                continue
            if in_port in seen_inputs:
                self.fail(
                    cycle,
                    f"router {router.node}: input port {in_port} holds two "
                    f"output ports ({seen_inputs[in_port]} and {out_port})",
                )
            seen_inputs[in_port] = out_port
            ivc = router.input_vcs[in_port][0]
            if ivc.state is not VCState.ACTIVE or ivc.route != out_port:
                self.fail(
                    cycle,
                    f"router {router.node}: output port {out_port} held by "
                    f"input {in_port} but that input is {ivc.state.name.lower()} "
                    f"with route={ivc.route}",
                )


class _SpecAllocatorProxy:
    """Wraps a router's speculative switch allocator to observe grants.

    Wrapping the *instance* (rather than hooking the class) means a
    buggy or monkeypatched ``allocate`` is still observed -- the probe
    sees exactly the grants the router acts on.
    """

    def __init__(self, inner, probe: "SpeculationLegalityProbe",
                 router) -> None:
        self._inner = inner
        self._probe = probe
        self._router = router

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def allocate(self, nonspec_requests, spec_requests):
        nonspec_grants, spec_grants = self._inner.allocate(
            nonspec_requests, spec_requests
        )
        self._probe.observe(
            self._router, nonspec_requests, spec_requests,
            nonspec_grants, spec_grants,
        )
        return nonspec_grants, spec_grants


class SpeculationLegalityProbe(Probe):
    """A speculative grant never displaces a non-speculative one.

    Checks every speculative switch-allocation round, at the moment the
    grants are produced:

    * every grant answers a request that was actually submitted;
    * at most one grant per input port and per output port across the
      combined (non-speculative + speculative) grant set;
    * under conservative priority, no surviving speculative grant shares
      an input or an output with a non-speculative grant.

    The last check is skipped for ``speculation_priority="equal"`` --
    the ablation where displacement is the deliberate point.
    """

    name = "speculation_legality"

    def __init__(self, enforce_priority: bool = True) -> None:
        super().__init__()
        self.enforce_priority = enforce_priority
        self._wrapped: List[Tuple[Any, Any]] = []

    def attach(self, network) -> None:
        self._network = network
        self._wrapped = []
        for router in network.routers:
            inner = getattr(router, "_spec_switch_allocator", None)
            if inner is None:
                continue
            router._spec_switch_allocator = _SpecAllocatorProxy(
                inner, self, router
            )
            self._wrapped.append((router, inner))

    def detach(self, network) -> None:
        for router, inner in self._wrapped:
            router._spec_switch_allocator = inner
        self._wrapped = []

    def observe(self, router, nonspec_requests, spec_requests,
                nonspec_grants, spec_grants) -> None:
        self.checks += 1
        if not nonspec_grants and not spec_grants:
            return
        cycle = self._network.cycle
        for grants, requests, kind in (
            (nonspec_grants, nonspec_requests, "non-speculative"),
            (spec_grants, spec_requests, "speculative"),
        ):
            if not grants:
                continue
            keys = {(r.group, r.member, r.resource) for r in requests}
            for grant in grants:
                if (grant.group, grant.member, grant.resource) not in keys:
                    self.fail(
                        cycle,
                        f"router {router.node}: {kind} grant {grant} answers "
                        f"no submitted request",
                    )

        seen_inputs: set = set()
        seen_outputs: set = set()
        for grant in (*nonspec_grants, *spec_grants):
            if grant.group in seen_inputs:
                self.fail(
                    cycle,
                    f"router {router.node}: input port {grant.group} granted "
                    f"twice in one cycle",
                )
            seen_inputs.add(grant.group)
            if grant.resource in seen_outputs:
                self.fail(
                    cycle,
                    f"router {router.node}: output port {grant.resource} "
                    f"granted twice in one cycle",
                )
            seen_outputs.add(grant.resource)

        if self.enforce_priority and spec_grants and nonspec_grants:
            taken_inputs = {g.group for g in nonspec_grants}
            taken_outputs = {g.resource for g in nonspec_grants}
            for grant in spec_grants:
                if grant.group in taken_inputs or (
                        grant.resource in taken_outputs):
                    self.fail(
                        cycle,
                        f"router {router.node}: speculative grant {grant} "
                        f"displaced a non-speculative grant (priority "
                        f"inversion)",
                    )


class InOrderDeliveryProbe(Probe):
    """Every packet's flits eject in index order, at exactly one sink --
    the sink at the packet's destination.  The destination check is what
    catches a corrupted route table or memo: a misrouted packet that
    ejects cleanly anywhere else is flagged the cycle it arrives."""

    name = "in_order_delivery"

    def __init__(self) -> None:
        super().__init__()
        self._expected: Dict[int, int] = {}
        self._sink_of: Dict[int, int] = {}
        self._originals: List[Tuple[Any, Any]] = []

    def attach(self, network) -> None:
        self._originals = []
        for sink in network.sinks:
            original = sink.accept

            def wrapped(flit, cycle, _sink=sink, _original=original):
                self._observe(_sink, flit, cycle)
                _original(flit, cycle)

            sink.accept = wrapped
            self._originals.append((sink, original))

    def detach(self, network) -> None:
        for sink, original in self._originals:
            sink.accept = original
        self._originals = []

    def _observe(self, sink, flit, cycle: int) -> None:
        self.checks += 1
        packet = flit.packet
        pid = packet.packet_id
        if sink.node != packet.destination:
            self.fail(
                cycle,
                f"packet {pid} (destination {packet.destination}) ejected "
                f"at node {sink.node}",
            )
        claimed = self._sink_of.setdefault(pid, sink.node)
        if claimed != sink.node:
            self.fail(
                cycle,
                f"packet {pid} ejected at node {sink.node} after earlier "
                f"flits ejected at node {claimed}",
            )
        expected = self._expected.get(pid, 0)
        if flit.index != expected:
            self.fail(
                cycle,
                f"packet {pid}: flit index {flit.index} ejected at node "
                f"{sink.node}, expected index {expected}",
            )
        if flit.is_tail:
            if flit.index != packet.length - 1:
                self.fail(
                    cycle,
                    f"packet {pid}: tail flit has index {flit.index}, "
                    f"packet length is {packet.length}",
                )
            self._expected.pop(pid, None)
            self._sink_of.pop(pid, None)
        else:
            self._expected[pid] = expected + 1


class WatchdogProbe(Probe):
    """Deadlock/livelock watchdog with a configurable stall horizon.

    Trips when flits are in the network but none has moved through any
    crossbar for ``stall_horizon`` cycles (deadlock), or flits keep
    moving but none ejects for ``ejection_horizon`` cycles (livelock).
    On trip the violation carries a network snapshot -- the occupancy
    heat map plus the most congested routers' VC states -- so the stuck
    configuration can be reproduced and inspected offline.
    """

    name = "watchdog"

    def __init__(self, stall_horizon: int = 1_000,
                 ejection_horizon: Optional[int] = None) -> None:
        super().__init__()
        if stall_horizon < 1:
            raise ValueError("stall_horizon must be >= 1 cycle")
        self.stall_horizon = stall_horizon
        self.ejection_horizon = (
            ejection_horizon if ejection_horizon is not None
            else 10 * stall_horizon
        )
        self._last_forwarded = -1
        self._last_forward_cycle = 0
        self._last_ejected = -1
        self._last_eject_cycle = 0

    def check(self, network, cycle: int) -> None:
        self.checks += 1
        ejected = network.total_flits_ejected()
        # injected - ejected equals flits_in_flight() whenever flit
        # conservation holds (its probe runs alongside); computing it
        # from the O(nodes) totals keeps the watchdog cheap.
        if network.total_flits_injected() == ejected:
            self._last_forward_cycle = cycle
            self._last_eject_cycle = cycle
            return
        forwarded = sum(r.stats.flits_forwarded for r in network.routers)
        if forwarded != self._last_forwarded:
            self._last_forwarded = forwarded
            self._last_forward_cycle = cycle
        if ejected != self._last_ejected:
            self._last_ejected = ejected
            self._last_eject_cycle = cycle

        if cycle - self._last_forward_cycle >= self.stall_horizon:
            self.fail(
                cycle,
                f"deadlock: flits in flight but none traversed a crossbar "
                f"for {cycle - self._last_forward_cycle} cycles "
                f"(stall_horizon={self.stall_horizon})",
                snapshot=self._snapshot(network),
            )
            self._last_forward_cycle = cycle  # avoid re-trip when collecting
        elif cycle - self._last_eject_cycle >= self.ejection_horizon:
            self.fail(
                cycle,
                f"livelock: flits moving but none ejected for "
                f"{cycle - self._last_eject_cycle} cycles "
                f"(ejection_horizon={self.ejection_horizon})",
                snapshot=self._snapshot(network),
            )
            self._last_eject_cycle = cycle

    def _snapshot(self, network) -> str:
        from ..snapshot import busiest_routers, describe_router, occupancy_map

        sections = [occupancy_map(network)]
        for router in busiest_routers(network, count=3):
            if router.buffered_flits():
                sections.append(describe_router(router))
        sections.append(
            f"config: {network.config!r}\n"
            f"reproduce: Simulator(config, measurement, checked=True).run()"
        )
        return "\n".join(sections)


def default_probes(config) -> List[Probe]:
    """The probe set checked mode runs for ``config``."""
    probes: List[Probe] = [
        FlitConservationProbe(),
        CreditConsistencyProbe(),
        VCExclusivityProbe(),
        InOrderDeliveryProbe(),
        WatchdogProbe(),
    ]
    from ..config import RouterKind

    if config.router_kind is RouterKind.SPECULATIVE_VC:
        probes.append(SpeculationLegalityProbe(
            enforce_priority=config.speculation_priority == "conservative"
        ))
    return probes
