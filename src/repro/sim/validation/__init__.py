"""Machine-checked simulation invariants ("checked mode").

The paper's headline numbers rest on the cycle-accurate engine being
correct: flit conservation, credit accounting, and speculative-grant
priority are exactly the places a subtle bug silently skews every
figure.  This package makes those invariants executable:

* :mod:`~repro.sim.validation.probes` -- pluggable invariant probes a
  :class:`~repro.sim.engine.Simulator` runs every cycle in checked
  mode: flit conservation (network-wide and per router), credit counts
  matching downstream free-buffer counts, output-VC exclusivity,
  speculation legality, per-packet in-order delivery, and a
  deadlock/livelock watchdog that dumps a network snapshot on trip.
* :mod:`~repro.sim.validation.suite` -- :class:`ValidationSuite`, the
  probe container the engine drives (``checked=True`` builds the
  default suite for a config).
* :mod:`~repro.sim.validation.oracle` -- differential oracles that run
  two configurations to completion and diff their metrics/counters
  (speculative vs non-speculative router, serial vs parallel sweeps,
  cached vs uncached results).
* :mod:`~repro.sim.validation.proptest` -- a seeded generator of
  randomized traffic/config cases driven through checked engines.

Checked mode costs nothing when disabled: the engine holds ``None`` and
skips a single attribute test per cycle.

Quick use::

    from repro.sim import RouterKind, SimConfig, simulate

    result = simulate(
        SimConfig(router_kind=RouterKind.SPECULATIVE_VC, num_vcs=2,
                  buffers_per_vc=4, injection_fraction=0.2),
        checked=True,
    )
    print(result.validation["ok"], result.validation["cycles_checked"])
"""

from .probes import (
    CreditConsistencyProbe,
    FlitConservationProbe,
    InOrderDeliveryProbe,
    InvariantViolation,
    Probe,
    SpeculationLegalityProbe,
    VCExclusivityProbe,
    Violation,
    WatchdogProbe,
)
from .suite import ValidationSuite, resolve_checked

__all__ = [
    "CreditConsistencyProbe",
    "FlitConservationProbe",
    "InOrderDeliveryProbe",
    "InvariantViolation",
    "Probe",
    "SpeculationLegalityProbe",
    "VCExclusivityProbe",
    "ValidationSuite",
    "Violation",
    "WatchdogProbe",
    "resolve_checked",
]
