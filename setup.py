"""Setup for the Peh & Dally (HPCA 2001) router-model reproduction.

Classic setup.py/setup.cfg packaging is used deliberately: the target
environment is offline, and pyproject-based builds trigger pip's build
isolation, which tries to download setuptools/wheel. The legacy path
installs with no network access.
"""
from setuptools import setup

setup()
