"""Benchmarks: ablations of the paper's fixed design choices.

* separable vs maximum-matching allocation (Section 3.2's efficiency
  trade-off);
* matrix vs round-robin arbiters;
* buffers/VC across the credit-loop boundary (the Figure 14/15
  mechanism, isolated);
* flow-control ranking across traffic patterns (footnote 13's premise).
"""

from conftest import bench_measurement

from repro.experiments.ablations import (
    allocator_ablation,
    arbiter_ablation,
    buffer_depth_sweep,
    traffic_pattern_study,
)


def test_allocator_ablation(benchmark, record_result):
    result = benchmark.pedantic(
        allocator_ablation,
        kwargs={"loads": (0.45, 0.55), "measurement": bench_measurement()},
        rounds=1, iterations=1,
    )
    separable = result.runs["separable (paper)"]
    maximum = result.runs["maximum matching"]
    for sep_run, max_run in zip(separable, maximum):
        benchmark.extra_info[f"separable @{sep_run.injection_fraction}"] = round(
            sep_run.average_latency, 1
        )
        benchmark.extra_info[f"maximum @{max_run.injection_fraction}"] = round(
            max_run.average_latency, 1
        )
        # "a small amount of allocation efficiency": the exact matcher
        # helps, but only modestly below saturation.
        assert max_run.average_latency <= sep_run.average_latency * 1.10
    record_result("ablation_allocator", result.render())


def test_arbiter_ablation(benchmark, record_result):
    result = benchmark.pedantic(
        arbiter_ablation,
        kwargs={"loads": (0.45,), "measurement": bench_measurement()},
        rounds=1, iterations=1,
    )
    matrix = result.runs["matrix (paper)"][0].average_latency
    round_robin = result.runs["round-robin"][0].average_latency
    benchmark.extra_info["matrix"] = round(matrix, 1)
    benchmark.extra_info["round-robin"] = round(round_robin, 1)
    assert abs(matrix - round_robin) < 0.3 * matrix
    record_result("ablation_arbiter", result.render())


def test_buffer_depth_sweep(benchmark, record_result):
    result = benchmark.pedantic(
        buffer_depth_sweep,
        kwargs={"buffers": (2, 3, 4, 5, 8), "load": 0.5,
                "measurement": bench_measurement()},
        rounds=1, iterations=1,
    )
    latency = {
        label: runs[0].average_latency for label, runs in result.runs.items()
    }
    for label, value in latency.items():
        benchmark.extra_info[label] = round(value, 1)
    # scarce buffering is costly; past the loop, returns flatten.
    assert latency["2 buffers/VC"] > latency["5 buffers/VC"]
    assert latency["5 buffers/VC"] < latency["2 buffers/VC"] * 0.9
    record_result("ablation_buffers", result.render())


def test_traffic_patterns(benchmark, record_result):
    studies = benchmark.pedantic(
        traffic_pattern_study,
        kwargs={"patterns": ("uniform", "transpose", "bit_complement"),
                "load": 0.3, "measurement": bench_measurement()},
        rounds=1, iterations=1,
    )
    sections = []
    for pattern, result in studies.items():
        wormhole = result.runs["wormhole (8 bufs)"][0].average_latency
        spec = result.runs["specVC (2vcsX4bufs)"][0].average_latency
        benchmark.extra_info[f"{pattern} WH"] = round(wormhole, 1)
        benchmark.extra_info[f"{pattern} specVC"] = round(spec, 1)
        # footnote 13: the flow-control ranking is pattern-invariant.
        assert spec <= wormhole * 1.05, pattern
        sections.append(result.render())
    record_result("ablation_traffic", "\n\n".join(sections))


def test_speculation_priority(benchmark, record_result):
    from repro.experiments.ablations import speculation_priority_ablation

    result = benchmark.pedantic(
        speculation_priority_ablation,
        kwargs={"loads": (0.55,), "measurement": bench_measurement()},
        rounds=1, iterations=1,
    )
    conservative = result.runs["conservative (paper)"][0].average_latency
    equal = result.runs["equal priority"][0].average_latency
    benchmark.extra_info["conservative"] = round(conservative, 1)
    benchmark.extra_info["equal"] = round(equal, 1)
    # Section 3.1: prioritised speculation never hurts; dropping the
    # priority can only match or worsen things.
    assert conservative <= equal * 1.05
    record_result("ablation_spec_priority", result.render())


def test_vc_partition(benchmark, record_result):
    from repro.experiments.ablations import vc_partition_sweep

    result = benchmark.pedantic(
        vc_partition_sweep,
        kwargs={"load": 0.60, "measurement": bench_measurement()},
        rounds=1, iterations=1,
    )
    latency = {
        label: runs[0].average_latency for label, runs in result.runs.items()
    }
    for label, value in latency.items():
        benchmark.extra_info[label] = round(value, 1)
    # 2-flit VC buffers sit far below the 5-cycle credit loop.
    assert latency["8vcs x 2bufs"] > min(
        latency["2vcs x 8bufs"], latency["4vcs x 4bufs"]
    )
    record_result("ablation_vc_partition", result.render())


def test_flow_control_trio(benchmark, record_result):
    from repro.experiments.ablations import flow_control_trio

    result = benchmark.pedantic(
        flow_control_trio,
        kwargs={"loads": (0.45,), "measurement": bench_measurement()},
        rounds=1, iterations=1,
    )
    wormhole = result.runs["wormhole"][0].average_latency
    vct = result.runs["virtual cut-through"][0].average_latency
    spec = result.runs["speculative VC"][0].average_latency
    benchmark.extra_info["wormhole"] = round(wormhole, 1)
    benchmark.extra_info["vct"] = round(vct, 1)
    benchmark.extra_info["specVC"] = round(spec, 1)
    # with buffers near the packet size: spec VC < wormhole < VCT.
    assert spec < wormhole < vct
    record_result("ablation_flow_control_trio", result.render())


def test_burstiness(benchmark, record_result):
    from repro.experiments.ablations import burstiness_study

    result = benchmark.pedantic(
        burstiness_study,
        kwargs={"load": 0.30, "measurement": bench_measurement()},
        rounds=1, iterations=1,
    )
    for label, runs in result.runs.items():
        benchmark.extra_info[label] = round(runs[0].average_latency, 1)
    # bursts raise latency at equal mean load; the flow-control ranking
    # survives.
    assert (
        result.runs["wormhole, bursty"][0].average_latency
        > result.runs["wormhole, constant"][0].average_latency
    )
    assert (
        result.runs["specVC, bursty"][0].average_latency
        <= result.runs["wormhole, bursty"][0].average_latency * 1.05
    )
    record_result("ablation_burstiness", result.render())
