"""Benchmark: Figure 12 -- combined VC & switch allocation stage delay."""

from repro.delaymodel.modules import RoutingRange
from repro.experiments.figures import fig12


def test_fig12(benchmark, record_result):
    result = benchmark(fig12)

    rv = result.series(RoutingRange.RV)
    rpv = result.series(RoutingRange.RPV)
    # the Table-1 anchor and the figure's dominance ordering
    assert abs(result.delays_tau4[("Rv", 5, 2)] - 14.7) < 0.15
    assert all(a <= b + 1e-9 for a, b in zip(rv, rpv))
    assert max(rpv) < 40.0  # the figure's y-axis bound

    benchmark.extra_info["Rv delays (tau4)"] = [round(d, 1) for d in rv]
    benchmark.extra_info["Rpv delays (tau4)"] = [round(d, 1) for d in rpv]
    record_result("fig12", result.render())
