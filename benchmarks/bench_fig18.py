"""Benchmark: Figure 18 -- credit propagation delay 1 vs 4 cycles.

Paper shape: raising credit propagation from 1 to 4 cycles costs the
speculative VC router (2 VCs x 4 buffers) ~18% of saturation throughput
(55% -> 45%), while zero-load latency is barely affected.
"""

from conftest import attach_curves, bench_measurement

from repro.experiments.figures import fig18
from repro.experiments.sweep import find_saturation

LOADS = (0.05, 0.30, 0.45, 0.55, 0.62)


def test_fig18(benchmark, record_result):
    result = benchmark.pedantic(
        fig18,
        kwargs={"measurement": bench_measurement(), "loads": LOADS},
        rounds=1, iterations=1,
    )

    curves = {spec.label: curve for spec, curve in result.curves}
    fast = curves["specVC, 1-cycle credits"]
    slow = curves["specVC, 4-cycle credits"]

    # credit latency does not directly affect zero-load latency...
    assert abs(fast.zero_load_latency() - slow.zero_load_latency()) < 6.0
    # ...but costs saturation throughput
    assert find_saturation(slow) < find_saturation(fast)

    attach_curves(benchmark, result)
    record_result("fig18", result.render())
