"""Shared helpers for the figure/table benchmarks.

Every benchmark regenerates one table or figure of the paper and

* times the regeneration via pytest-benchmark,
* attaches the headline numbers to ``benchmark.extra_info``,
* writes the rendered text to ``benchmarks/results/<name>.txt``.

Scale: the simulation figures default to reduced sample sizes so the
whole harness finishes in minutes.  Set ``REPRO_BENCH_SCALE=paper`` to
run the paper's full 10k-warm-up / 100k-packet methodology (hours).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.sim.config import MeasurementConfig, paper_scale

RESULTS_DIR = Path(__file__).parent / "results"

#: Offered loads for the latency-throughput benches: zero-load anchor,
#: mid-load, and points bracketing the paper's saturation values.
BENCH_LOADS = (0.05, 0.30, 0.45, 0.55)
BENCH_LOADS_HIGH = (0.05, 0.35, 0.60, 0.66, 0.72)   # 16-buffer configurations


def bench_measurement() -> MeasurementConfig:
    """Measurement scale for the simulation benches."""
    if os.environ.get("REPRO_BENCH_SCALE") == "paper":
        return paper_scale()
    return MeasurementConfig(
        warmup_cycles=400,
        sample_packets=700,
        max_cycles=20_000,
        drain_cycles=5_000,
    )


@pytest.fixture
def record_result():
    """Write a rendered figure to benchmarks/results/<name>.txt."""

    def write(name: str, text: str) -> Path:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        return path

    return write


def attach_curves(benchmark, result) -> None:
    """Store zero-load latency and saturation of each curve in extra_info."""
    from repro.experiments.sweep import find_saturation

    for spec, curve in result.curves:
        zero_load = curve.zero_load_latency()
        benchmark.extra_info[f"{spec.label} zero-load"] = round(zero_load, 2)
        benchmark.extra_info[f"{spec.label} saturation"] = round(
            find_saturation(curve), 3
        )
        if spec.paper_zero_load is not None:
            benchmark.extra_info[f"{spec.label} paper zero-load"] = (
                spec.paper_zero_load
            )
        if spec.paper_saturation is not None:
            benchmark.extra_info[f"{spec.label} paper saturation"] = (
                spec.paper_saturation
            )
