"""Benchmark: Figure 11 -- pipeline stage counts across (p, v).

Reproduces the paper's claims: wormhole 3 stages; non-speculative VC 4
stages up to 8 VCs; speculative VC 3 stages up to 16 VCs.
"""

from repro.experiments.figures import fig11


def test_fig11(benchmark, record_result):
    result = benchmark(fig11)

    assert result.wormhole.stages == 3
    nonspec = {(b.p, b.v): b.stages for b in result.nonspeculative}
    spec = {(b.p, b.v): b.stages for b in result.speculative}
    for p in (5, 7):
        assert all(nonspec[(p, v)] == 4 for v in (2, 4, 8))
        assert all(spec[(p, v)] == 3 for v in (2, 4, 8, 16))

    benchmark.extra_info["wormhole stages"] = result.wormhole.stages
    benchmark.extra_info["nonspec stages (p=5)"] = [
        nonspec[(5, v)] for v in (2, 4, 8, 16, 32)
    ]
    benchmark.extra_info["spec stages (p=5)"] = [
        spec[(5, v)] for v in (2, 4, 8, 16, 32)
    ]
    record_result("fig11", result.render())
