"""Microbenchmark: the chunked parallel sweep runtime vs the serial path.

Runs a figure-sized grid (3 router configs x 8 loads = 24 points, the
shape of Figures 13/14) three ways --

* serial backend, **cold cache** (the baseline: execution plus the
  streaming cache writes),
* chunked work-stealing process backend, **cold cache** (a fresh
  directory, so the pass measures executor overhead and nothing else --
  the original benchmark let cache state leak into the comparison),
* serial with a **warm cache** (every point served from disk),

-- verifies the parallel results are bit-identical to serial, that the
warm pass serves >= 95% from cache, then writes wall times plus the
scheduler's chunk/steal accounting to ``benchmarks/BENCH_runtime.json``
so the perf trajectory is tracked across PRs.

``--check`` gates the recorded numbers for CI: bit-identity and the
warm-cache hit rate always, and ``parallel_speedup >= --floor``
(default 1.5) whenever the machine has at least two cores -- on a
single core the parallel pass cannot win and the floor is skipped
(the JSON records ``cpu_count`` so readers can judge the number).

Run standalone (full scale)::

    PYTHONPATH=src python benchmarks/bench_runtime.py [--workers 4]

as the CI gate (quick scale)::

    PYTHONPATH=src python benchmarks/bench_runtime.py --check --scale quick

or via pytest (reduced scale)::

    PYTHONPATH=src python -m pytest benchmarks/bench_runtime.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
import time
from pathlib import Path
from typing import Optional

from repro.runtime import Experiment, ProcessBackend, ResultCache
from repro.sim.config import MeasurementConfig, RouterKind, SimConfig

RESULT_PATH = Path(__file__).parent / "BENCH_runtime.json"

#: The Figure 13 curve trio: the grid rows.
GRID_CONFIGS = [
    SimConfig(router_kind=RouterKind.WORMHOLE, buffers_per_vc=8, seed=1),
    SimConfig(router_kind=RouterKind.VIRTUAL_CHANNEL, num_vcs=2,
              buffers_per_vc=4, seed=1),
    SimConfig(router_kind=RouterKind.SPECULATIVE_VC, num_vcs=2,
              buffers_per_vc=4, seed=1),
]

#: 8 loads x 3 configs = 24 points, a full figure's worth.
GRID_LOADS = (0.05, 0.15, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50)

#: Minimum parallel speedup the CI gate requires on >= 2 cores.
SPEEDUP_FLOOR = 1.5


def bench_measurement(scale: str) -> MeasurementConfig:
    if scale == "quick":  # pytest wrapper / CI gate: seconds, not minutes
        return MeasurementConfig(
            warmup_cycles=100, sample_packets=120, max_cycles=6_000,
            drain_cycles=2_000,
        )
    return MeasurementConfig(
        warmup_cycles=400, sample_packets=700, max_cycles=20_000,
        drain_cycles=5_000,
    )


def run_benchmark(
    scale: str = "bench",
    workers: int = 4,
    mesh_radix: Optional[int] = None,
    write_json: bool = True,
) -> dict:
    measurement = bench_measurement(scale)
    configs = GRID_CONFIGS
    if mesh_radix is not None:
        from dataclasses import replace

        configs = [replace(c, mesh_radix=mesh_radix) for c in configs]

    def grid_with(experiment):
        start = time.perf_counter()
        grid = experiment.grid(configs, loads=GRID_LOADS)
        return grid, time.perf_counter() - start

    # Both timed passes pay identical cache-write costs (cold, fresh
    # directories), so the ratio isolates executor overhead.
    with tempfile.TemporaryDirectory(prefix="repro-bench-serial-") as tmp:
        serial_grid, serial_s = grid_with(
            Experiment(measurement, backend="serial", cache=ResultCache(tmp))
        )

    with tempfile.TemporaryDirectory(prefix="repro-bench-parallel-") as tmp:
        parallel_exp = Experiment(
            measurement, backend=ProcessBackend(workers),
            cache=ResultCache(tmp),
        )
        parallel_grid, parallel_s = grid_with(parallel_exp)
        if parallel_grid.results != serial_grid.results:
            raise AssertionError(
                "parallel grid is not bit-identical to the serial grid"
            )
        # Warm pass over the directory the parallel pass streamed into:
        # proves the chunked backend's writes are served back exactly.
        warm = Experiment(measurement, backend="serial", cache=ResultCache(tmp))
        warm_grid, warm_s = grid_with(warm)
        hit_rate = warm.stats.cache_hit_rate
    if warm_grid.results != serial_grid.results:
        raise AssertionError("cached grid differs from the executed grid")
    if hit_rate < 0.95:
        raise AssertionError(
            f"warm cache served only {hit_rate:.0%} of points (need >= 95%)"
        )

    total_cycles = sum(
        r.counters.total_cycles for r in serial_grid.results if r.counters
    )
    scheduler = parallel_exp.stats.scheduler
    record = {
        "benchmark": "runtime",
        "scale": scale,
        "grid_points": len(serial_grid),
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "cycles_simulated_per_pass": total_cycles,
        "serial_seconds": round(serial_s, 3),
        "parallel_seconds": round(parallel_s, 3),
        "parallel_speedup": round(serial_s / parallel_s, 3),
        "parallel_chunks": scheduler.chunks_completed,
        "parallel_steals": scheduler.steals,
        "parallel_splits": scheduler.splits,
        "mean_chunk_seconds": round(scheduler.mean_chunk_seconds, 3),
        "mean_worker_utilization": round(
            parallel_exp.stats.mean_worker_utilization, 3
        ),
        "cache_stream_lag_seconds": round(scheduler.mean_stream_lag, 6),
        "warm_cache_seconds": round(warm_s, 3),
        "warm_cache_speedup": round(serial_s / warm_s, 1),
        "warm_cache_hit_rate": round(hit_rate, 4),
        "parallel_bit_identical": True,
    }
    if write_json:
        RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    return record


def check_record(record: dict, floor: float = SPEEDUP_FLOOR) -> int:
    """The CI gate over one benchmark record; returns a process exit code.

    Bit-identity and the warm-cache hit rate are unconditional.  The
    parallel-speedup floor applies only on >= 2 cores: a single-core
    machine cannot express parallelism, and the gate says so instead of
    failing (or silently passing a meaningless ratio).
    """
    ok = True
    if not record["parallel_bit_identical"]:
        print("FAIL: parallel grid not bit-identical to serial")
        ok = False
    if record["warm_cache_hit_rate"] < 0.95:
        print(
            f"FAIL: warm cache hit rate {record['warm_cache_hit_rate']:.0%} "
            f"< 95%"
        )
        ok = False
    cores = record.get("cpu_count") or 1
    if cores >= 2:
        if record["parallel_speedup"] < floor:
            print(
                f"FAIL: parallel_speedup {record['parallel_speedup']} < "
                f"floor {floor} on {cores} cores "
                f"({record['workers']} workers, cold cache)"
            )
            ok = False
        else:
            print(
                f"ok: parallel_speedup {record['parallel_speedup']} >= "
                f"{floor} ({cores} cores, {record['workers']} workers)"
            )
    else:
        print(
            f"skip: parallel-speedup floor needs >= 2 cores, machine has "
            f"{cores} (measured {record['parallel_speedup']})"
        )
    return 0 if ok else 1


def test_runtime_microbenchmark():
    """Pytest entry: quick scale, correctness assertions included."""
    record = run_benchmark(scale="quick", workers=2, write_json=True)
    assert record["parallel_bit_identical"]
    assert record["warm_cache_hit_rate"] >= 0.95
    assert record["grid_points"] >= 24
    assert record["parallel_chunks"] >= 2
    # The warm cache must beat re-simulating by a wide margin.
    assert record["warm_cache_seconds"] < record["serial_seconds"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int,
                        default=min(4, os.cpu_count() or 1))
    parser.add_argument("--scale", choices=("quick", "bench"),
                        default="bench")
    parser.add_argument(
        "--check", action="store_true",
        help="gate the results (bit-identity, warm hit rate, and the "
             "parallel-speedup floor on >= 2 cores); exit nonzero on "
             "regression",
    )
    parser.add_argument(
        "--floor", type=float, default=SPEEDUP_FLOOR,
        help=f"minimum parallel speedup for --check "
             f"(default {SPEEDUP_FLOOR})",
    )
    args = parser.parse_args()
    record = run_benchmark(scale=args.scale, workers=max(1, args.workers))
    print(json.dumps(record, indent=2))
    print(f"\nwritten to {RESULT_PATH}")
    if args.check:
        return check_record(record, floor=args.floor)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
