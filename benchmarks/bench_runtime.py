"""Microbenchmark: the parallel sweep runtime vs the serial path.

Runs a figure-sized grid (3 router configs x 8 loads = 24 points, the
shape of Figures 13/14) four ways --

* serial, no cache (the pre-runtime baseline),
* 4 workers, no cache (parallel fan-out),
* serial with a cold cache (execution + store overhead),
* serial with a warm cache (every point served from disk),

-- verifies the parallel results are bit-identical to serial and that
the warm pass serves >= 95% from cache, then writes the wall times to
``benchmarks/BENCH_runtime.json`` so the perf trajectory is tracked
from this PR onward.

Run standalone (full scale)::

    PYTHONPATH=src python benchmarks/bench_runtime.py [--workers 4]

or via pytest (reduced scale)::

    PYTHONPATH=src python -m pytest benchmarks/bench_runtime.py -q

On a single-core machine the parallel pass cannot beat serial; the
JSON records ``cpu_count`` so readers can judge the speedup number.
The >= 2x target applies on >= 4 cores.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
import time
from pathlib import Path
from typing import Optional

from repro.runtime import Experiment, ResultCache
from repro.sim.config import MeasurementConfig, RouterKind, SimConfig

RESULT_PATH = Path(__file__).parent / "BENCH_runtime.json"

#: The Figure 13 curve trio: the grid rows.
GRID_CONFIGS = [
    SimConfig(router_kind=RouterKind.WORMHOLE, buffers_per_vc=8, seed=1),
    SimConfig(router_kind=RouterKind.VIRTUAL_CHANNEL, num_vcs=2,
              buffers_per_vc=4, seed=1),
    SimConfig(router_kind=RouterKind.SPECULATIVE_VC, num_vcs=2,
              buffers_per_vc=4, seed=1),
]

#: 8 loads x 3 configs = 24 points, a full figure's worth.
GRID_LOADS = (0.05, 0.15, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50)


def bench_measurement(scale: str) -> MeasurementConfig:
    if scale == "quick":  # pytest wrapper: seconds, not minutes
        return MeasurementConfig(
            warmup_cycles=100, sample_packets=120, max_cycles=6_000,
            drain_cycles=2_000,
        )
    return MeasurementConfig(
        warmup_cycles=400, sample_packets=700, max_cycles=20_000,
        drain_cycles=5_000,
    )


def run_benchmark(
    scale: str = "bench",
    workers: int = 4,
    mesh_radix: Optional[int] = None,
    write_json: bool = True,
) -> dict:
    measurement = bench_measurement(scale)
    configs = GRID_CONFIGS
    if mesh_radix is not None:
        from dataclasses import replace

        configs = [replace(c, mesh_radix=mesh_radix) for c in configs]

    def grid_with(experiment):
        start = time.perf_counter()
        grid = experiment.run_grid(configs, loads=GRID_LOADS)
        return grid, time.perf_counter() - start

    serial_grid, serial_s = grid_with(Experiment(measurement, workers=0))
    parallel_grid, parallel_s = grid_with(
        Experiment(measurement, workers=workers)
    )
    if parallel_grid.results != serial_grid.results:
        raise AssertionError(
            "parallel grid is not bit-identical to the serial grid"
        )

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        cold = Experiment(measurement, workers=0, cache=ResultCache(tmp))
        cold_grid, cold_s = grid_with(cold)
        warm = Experiment(measurement, workers=0, cache=ResultCache(tmp))
        warm_grid, warm_s = grid_with(warm)
        hit_rate = warm.stats.cache_hit_rate
    if warm_grid.results != serial_grid.results:
        raise AssertionError("cached grid differs from the executed grid")
    if hit_rate < 0.95:
        raise AssertionError(
            f"warm cache served only {hit_rate:.0%} of points (need >= 95%)"
        )

    total_cycles = sum(
        r.counters.total_cycles for r in serial_grid.results if r.counters
    )
    record = {
        "benchmark": "runtime",
        "scale": scale,
        "grid_points": len(serial_grid),
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "cycles_simulated_per_pass": total_cycles,
        "serial_seconds": round(serial_s, 3),
        "parallel_seconds": round(parallel_s, 3),
        "parallel_speedup": round(serial_s / parallel_s, 3),
        "cold_cache_seconds": round(cold_s, 3),
        "warm_cache_seconds": round(warm_s, 3),
        "warm_cache_speedup": round(serial_s / warm_s, 1),
        "warm_cache_hit_rate": round(hit_rate, 4),
        "parallel_bit_identical": True,
    }
    if write_json:
        RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    return record


def test_runtime_microbenchmark():
    """Pytest entry: quick scale, correctness assertions included."""
    record = run_benchmark(scale="quick", workers=2, write_json=True)
    assert record["parallel_bit_identical"]
    assert record["warm_cache_hit_rate"] >= 0.95
    assert record["grid_points"] >= 24
    # The warm cache must beat re-simulating by a wide margin.
    assert record["warm_cache_seconds"] < record["serial_seconds"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--scale", choices=("quick", "bench"),
                        default="bench")
    args = parser.parse_args()
    record = run_benchmark(scale=args.scale, workers=args.workers)
    print(json.dumps(record, indent=2))
    print(f"\nwritten to {RESULT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
