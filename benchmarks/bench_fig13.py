"""Benchmark: Figure 13 -- latency-throughput with 8 buffers per port.

Paper shape: zero-load 29 (WH) / 36 (VC) / 30 (specVC); saturation
ordering WH < VC < specVC (the paper quotes ~40% / ~50% / ~55%).
"""

from conftest import BENCH_LOADS, attach_curves, bench_measurement

from repro.experiments.figures import fig13
from repro.experiments.sweep import find_saturation


def test_fig13(benchmark, record_result):
    result = benchmark.pedantic(
        fig13,
        kwargs={"measurement": bench_measurement(), "loads": BENCH_LOADS},
        rounds=1, iterations=1,
    )

    curves = {spec.label: curve for spec, curve in result.curves}
    wormhole = curves["WH (8 bufs)"]
    vc = curves["VC (2vcsX4bufs)"]
    spec_vc = curves["specVC (2vcsX4bufs)"]

    # zero-load anchors (+-1.5 cycles of the paper's figures)
    assert abs(wormhole.zero_load_latency() - 29) < 1.5
    assert abs(vc.zero_load_latency() - 35.5) < 1.6
    assert abs(spec_vc.zero_load_latency() - 29.5) < 1.6
    # saturation ordering
    assert find_saturation(wormhole) <= find_saturation(vc)
    assert find_saturation(wormhole) < find_saturation(spec_vc)

    attach_curves(benchmark, result)
    record_result("fig13", result.render())
