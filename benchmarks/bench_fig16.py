"""Benchmark: Figure 16 -- buffer-turnaround timelines."""

from repro.experiments.figures import fig16


def test_fig16(benchmark, record_result):
    text = benchmark(fig16)

    assert "turnaround 4 cycles" in text   # wormhole / speculative VC
    assert "turnaround 5 cycles" in text   # non-speculative VC
    assert "turnaround 2 cycles" in text   # single-cycle model
    assert "turnaround 7 cycles" in text   # 4-cycle credit propagation
    record_result("fig16", text)
