"""Benchmark: Section 2's critique of Chien's model, quantified.

Not a numbered figure in the paper, but the motivating comparison of its
Related Work section: Chien's single-cycle, crossbar-port-per-VC
canonical router implies a cycle time that stretches rapidly with the
number of virtual channels, while the paper's shared-port pipelined
architecture keeps a fixed clock and adds stages.
"""

from repro.delaymodel.chien import comparison_table, render_comparison


def test_chien_comparison(benchmark, record_result):
    table = benchmark(comparison_table)

    by_v = {c.v: c for c in table}
    # Chien's implied clock stretches with v...
    assert by_v[8].chien_clock_tau4 > by_v[2].chien_clock_tau4 > 20.0
    # ...while the pipelined model's clock is pinned at 20 tau4.
    assert all(c.pipelined_clock_tau4 == 20.0 for c in table)
    # At 8 VCs the single-cycle router cannot even match the pipelined
    # router's *total* per-hop latency.
    assert by_v[8].chien_per_hop_tau4 > 0.6 * by_v[8].pipelined_per_hop_tau4

    for c in table:
        benchmark.extra_info[f"v={c.v} chien clock (tau4)"] = round(
            c.chien_clock_tau4, 1
        )
    record_result("chien_comparison", render_comparison(table))
