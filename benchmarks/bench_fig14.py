"""Benchmark: Figure 14 -- 16 buffers per port, 2 VCs.

Paper shape: zero-load 29 / 35 / 29; saturation ~50% / ~65% / ~70%, the
speculative router's headline ~40% throughput gain over wormhole.
"""

from conftest import BENCH_LOADS_HIGH, attach_curves, bench_measurement

from repro.experiments.figures import fig14
from repro.experiments.sweep import find_saturation


def test_fig14(benchmark, record_result):
    result = benchmark.pedantic(
        fig14,
        kwargs={"measurement": bench_measurement(), "loads": BENCH_LOADS_HIGH},
        rounds=1, iterations=1,
    )

    curves = {spec.label: curve for spec, curve in result.curves}
    wormhole = curves["WH (16 bufs)"]
    vc = curves["VC (2vcsX8bufs)"]
    spec_vc = curves["specVC (2vcsX8bufs)"]

    assert abs(wormhole.zero_load_latency() - 29) < 1.5
    assert abs(vc.zero_load_latency() - 35) < 1.6
    assert abs(spec_vc.zero_load_latency() - 29) < 1.6
    # the speculative router matches wormhole latency but sustains
    # substantially higher load
    wh_sat = find_saturation(wormhole)
    assert find_saturation(spec_vc) >= find_saturation(vc) >= wh_sat
    assert find_saturation(spec_vc) > wh_sat

    attach_curves(benchmark, result)
    record_result("fig14", result.render())
