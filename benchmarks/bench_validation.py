"""Benchmark: three-way zero-load validation (formula vs simulator vs paper).

The closed-form analysis (``(D+1)H + D + L``), the cycle-accurate
simulator, and the paper's quoted figures must agree on zero-load
latency for every router model -- the strongest end-to-end check that
the whole stack implements the same machine.
"""

from conftest import bench_measurement

from repro.experiments.analysis import paper_zero_load_predictions
from repro.sim.config import RouterKind, SimConfig
from repro.sim.engine import simulate

CONFIGS = {
    "wormhole": (RouterKind.WORMHOLE, 1, 8),
    "virtual_channel": (RouterKind.VIRTUAL_CHANNEL, 2, 4),
    "speculative_vc": (RouterKind.SPECULATIVE_VC, 2, 4),
    "single_cycle_wormhole": (RouterKind.SINGLE_CYCLE_WORMHOLE, 1, 8),
    "single_cycle_vc": (RouterKind.SINGLE_CYCLE_VC, 2, 4),
}


def run_validation():
    predictions = {p.router: p for p in paper_zero_load_predictions()}
    rows = []
    for name, (kind, vcs, bufs) in CONFIGS.items():
        result = simulate(
            SimConfig(router_kind=kind, num_vcs=vcs, buffers_per_vc=bufs,
                      injection_fraction=0.05, seed=11),
            bench_measurement(),
        )
        prediction = predictions[name]
        rows.append((name, prediction.predicted, result.average_latency,
                     prediction.paper_value))
    return rows


def test_zero_load_validation(benchmark, record_result):
    rows = benchmark.pedantic(run_validation, rounds=1, iterations=1)

    lines = [f"{'router':<24} {'formula':>8} {'simulated':>10} {'paper':>6}"]
    for name, predicted, simulated, paper in rows:
        lines.append(f"{name:<24} {predicted:8.1f} {simulated:10.1f} {paper:6.0f}")
        benchmark.extra_info[name] = {
            "formula": round(predicted, 1),
            "simulated": round(simulated, 1),
            "paper": paper,
        }
        # formula and simulator agree to within measurement noise...
        assert abs(simulated - predicted) < 1.0, name
        # ...and both sit within ~1.5 cycles of the paper's figure.
        assert abs(simulated - paper) < 1.6, name
    record_result("validation_zero_load", "\n".join(lines))
