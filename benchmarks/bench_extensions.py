"""Benchmarks: the paper's proposed extensions, realised.

* torus vs mesh (other topologies);
* XY vs O1TURN vs minimal adaptive routing (other routing policies),
  with the footnote-5 speculative handling of adaptivity.
"""

from conftest import bench_measurement

from repro.experiments.ablations import o1turn_study, topology_study


def test_topology_extension(benchmark, record_result):
    result = benchmark.pedantic(
        topology_study,
        kwargs={"loads": (0.05, 0.25), "measurement": bench_measurement()},
        rounds=1, iterations=1,
    )
    mesh = result.runs["8x8 mesh (paper)"][0].average_latency
    torus = result.runs["8x8 torus (dateline VCs)"][0].average_latency
    benchmark.extra_info["mesh zero-load"] = round(mesh, 1)
    benchmark.extra_info["torus zero-load"] = round(torus, 1)
    # wrap links cut the average path by ~1.3 hops (~5 cycles at 4/hop)
    assert 3.0 < mesh - torus < 7.0
    record_result("ext_topology", result.render())


def test_routing_policy_extension(benchmark, record_result):
    result = benchmark.pedantic(
        o1turn_study,
        kwargs={"load": 0.40, "measurement": bench_measurement()},
        rounds=1, iterations=1,
    )
    xy = result.runs["xy (paper)"][0].average_latency
    o1turn = result.runs["o1turn"][0].average_latency
    adaptive = result.runs["adaptive (escape VC)"][0].average_latency
    benchmark.extra_info["xy"] = round(xy, 1)
    benchmark.extra_info["o1turn"] = round(o1turn, 1)
    benchmark.extra_info["adaptive"] = round(adaptive, 1)
    # transpose punishes oblivious XY; load balancing helps, adaptivity
    # helps most.
    assert o1turn < xy
    assert adaptive < xy
    record_result("ext_routing", result.render())


def test_pipeline_depth_cost(benchmark, record_result):
    """Figure 11 closed into Section 5: what the straddling allocators'
    extra stages actually cost in network latency."""
    from repro.experiments.ablations import pipeline_depth_study

    result = benchmark.pedantic(
        pipeline_depth_study,
        kwargs={"extras": (0, 1, 2), "loads": (0.05, 0.45),
                "measurement": bench_measurement()},
        rounds=1, iterations=1,
    )
    zero_loads = {
        label: runs[0].average_latency for label, runs in result.runs.items()
    }
    for label, value in zero_loads.items():
        benchmark.extra_info[label] = round(value, 1)
    base = zero_loads["+0 allocation stage(s)"]
    one = zero_loads["+1 allocation stage(s)"]
    assert 5.0 < one - base < 8.0  # ~6.3 hops x 1 cycle
    record_result("ext_pipeline_depth", result.render())


def test_many_vcs_extension(benchmark, record_result):
    from repro.experiments.ablations import many_vcs_study

    result = benchmark.pedantic(
        many_vcs_study,
        kwargs={"load": 0.60, "measurement": bench_measurement()},
        rounds=1, iterations=1,
    )
    for label, runs in result.runs.items():
        benchmark.extra_info[label] = round(runs[0].average_latency, 1)
    two = result.runs["2 VCs x 8 bufs (4-stage)"]
    sixteen = result.runs["16 VCs x 4 bufs (5-stage)"]
    assert sixteen[0].average_latency > two[0].average_latency
    record_result("ext_many_vcs", result.render())
