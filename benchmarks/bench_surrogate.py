"""Benchmark: surrogate serving speed and accuracy vs the simulator.

The surrogate's reason to exist is answering design-space queries
*without* the cycle kernel, so the gated quantities are

* per-query latency of a calibrated :func:`repro.surrogate.estimate`,
* its speedup over :func:`repro.sim.engine.simulate` at the paper's
  near-saturation load 0.42, and
* the max relative latency error the calibration observes against the
  simulated mini-corpus it was fitted on.

Run as a script to measure and maintain ``BENCH_surrogate.json``::

    PYTHONPATH=src python benchmarks/bench_surrogate.py            # report
    PYTHONPATH=src python benchmarks/bench_surrogate.py --update   # rewrite JSON
    PYTHONPATH=src python benchmarks/bench_surrogate.py --check    # CI gate

``--check`` gates on absolute bars, not the committed baseline: the
surrogate must stay >= 100x faster than simulation at load 0.42 and
within the subsystem's 15% pre-saturation error envelope.  (The
speedup is ~10^4-10^5 in practice; a relative-regression gate would
only add noise.)  The committed JSON is the tracking record.
"""

import argparse
import json
import sys
import time
from dataclasses import replace
from pathlib import Path

from repro.runtime.experiment import Experiment
from repro.sim.config import MeasurementConfig, RouterKind, SimConfig
from repro.sim.engine import simulate
from repro.surrogate import (
    calibrate,
    cross_validate,
    default_saturation,
    estimate,
    observations_from_results,
)

BENCH_JSON = Path(__file__).resolve().parent / "BENCH_surrogate.json"

#: The gate load: the paper's near-saturation operating point for the
#: baseline routers, and the load the perf-smoke job queries.
GATE_LOAD = 0.42

#: Absolute floor on surrogate-vs-simulation speedup at the gate load.
SPEEDUP_FLOOR = 100.0

#: The subsystem's pre-saturation error envelope (docs/SURROGATE.md).
ERROR_CEILING = 0.15

#: Mini-corpus measurement scale: the cross-validation battery's
#: reduced fidelity -- seconds of simulation, error well inside the
#: envelope.
MEASUREMENT = MeasurementConfig(
    warmup_cycles=300, sample_packets=200,
    max_cycles=12_000, drain_cycles=4_000,
)

#: Two calibration classes: the wormhole baseline and the speculative
#: VC router the gate load targets.
CORPUS_KINDS = (
    (RouterKind.WORMHOLE, 1),
    (RouterKind.SPECULATIVE_VC, 2),
)
CORPUS_FRACTIONS = (0.1, 0.3, 0.5, 0.7, 0.85)

QUERY_ROUNDS = 5
QUERIES_PER_ROUND = 2_000


def _config(kind, vcs, load):
    return SimConfig(
        router_kind=kind, num_vcs=vcs, mesh_radix=4, buffers_per_vc=8,
        injection_fraction=load, seed=7,
    )


def _mini_corpus():
    """Simulate the mini-corpus and fit the surrogate against it."""
    experiment = Experiment(MEASUREMENT, backend="serial", cache=False)
    pairs = []
    for kind, vcs in CORPUS_KINDS:
        base = _config(kind, vcs, 0.1)
        saturation = default_saturation(base)
        points = [
            replace(base, injection_fraction=round(saturation * f, 4))
            for f in CORPUS_FRACTIONS
        ]
        pairs.extend(zip(points, experiment.map(points)))
    observations = observations_from_results(pairs)
    calibration = calibrate(observations)
    report = cross_validate(calibration, observations)
    return calibration, report


def _time_surrogate(config, coefficients):
    """Best-of-rounds seconds per calibrated estimate() call."""
    best = float("inf")
    for _ in range(QUERY_ROUNDS):
        t0 = time.perf_counter()
        for _ in range(QUERIES_PER_ROUND):
            estimate(config, GATE_LOAD, coefficients)
        elapsed = time.perf_counter() - t0
        best = min(best, elapsed / QUERIES_PER_ROUND)
    return best


def _time_simulation(config):
    """Best-of-2 seconds for one cycle-accurate run at the gate load."""
    best = float("inf")
    for _ in range(2):
        t0 = time.perf_counter()
        simulate(config, MEASUREMENT)
        best = min(best, time.perf_counter() - t0)
    return best


def measure():
    calibration, report = _mini_corpus()
    gate_config = _config(RouterKind.SPECULATIVE_VC, 2, GATE_LOAD)
    coefficients = calibration.for_config(gate_config)
    query_seconds = _time_surrogate(gate_config, coefficients)
    simulate_seconds = _time_simulation(gate_config)
    return {
        "load": GATE_LOAD,
        "surrogate_us_per_query": round(query_seconds * 1e6, 3),
        "simulate_seconds": round(simulate_seconds, 4),
        "speedup_vs_simulation": round(simulate_seconds / query_seconds, 1),
        "max_observed_rel_error": round(report["max_rel_error"], 4),
        "mean_observed_rel_error": round(report["mean_rel_error"], 4),
        "calibration_classes": report["classes"] and len(report["classes"]),
        "calibration_points": report["points"],
    }


def check(point):
    """Absolute-bar errors: speedup floor and the error envelope."""
    errors = []
    if point["speedup_vs_simulation"] < SPEEDUP_FLOOR:
        errors.append(
            f"surrogate speedup {point['speedup_vs_simulation']:.1f}x "
            f"below the {SPEEDUP_FLOOR:.0f}x floor at load {GATE_LOAD}"
        )
    if point["max_observed_rel_error"] > ERROR_CEILING:
        errors.append(
            f"max observed relative error "
            f"{point['max_observed_rel_error']:.1%} exceeds the "
            f"{ERROR_CEILING:.0%} envelope"
        )
    return errors


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Surrogate serving benchmark (speed + accuracy gates)"
    )
    parser.add_argument(
        "--update", action="store_true",
        help=f"rewrite {BENCH_JSON.name} with fresh measurements",
    )
    parser.add_argument(
        "--check", action="store_true",
        help=f"fail unless the surrogate is >={SPEEDUP_FLOOR:.0f}x "
             f"faster than simulation at load {GATE_LOAD} and within "
             f"the {ERROR_CEILING:.0%} error envelope",
    )
    args = parser.parse_args(argv)

    point = measure()
    print(
        f"surrogate query : {point['surrogate_us_per_query']:8.1f} us\n"
        f"simulation run  : {point['simulate_seconds'] * 1e6:8.0f} us "
        f"({point['simulate_seconds']:.3f} s)\n"
        f"speedup         : {point['speedup_vs_simulation']:8.1f} x "
        f"at load {point['load']}\n"
        f"max rel error   : {point['max_observed_rel_error']:8.1%} over "
        f"{point['calibration_points']} corpus points"
    )

    if args.check:
        errors = check(point)
        if errors:
            for error in errors:
                print(f"PERF REGRESSION: {error}", file=sys.stderr)
            return 1
        print(
            f"perf check ok: {point['speedup_vs_simulation']:.0f}x >= "
            f"{SPEEDUP_FLOOR:.0f}x and "
            f"{point['max_observed_rel_error']:.1%} <= "
            f"{ERROR_CEILING:.0%}"
        )
        return 0

    if args.update:
        payload = {
            "benchmark": "calibrated estimate() vs simulate() on a 4x4 "
                         "speculative-VC mesh at load 0.42; mini-corpus "
                         "(wormhole + spec VC, 5 loads each) at the "
                         "cross-validation battery's measurement scale; "
                         "query latency best of "
                         f"{QUERY_ROUNDS} x {QUERIES_PER_ROUND} calls",
            "point": point,
        }
        BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {BENCH_JSON}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
