"""Benchmark: functional allocator throughput (allocations/second).

Performance guard for the simulator's hottest component.  Also contrasts
the separable allocator against the maximum matcher: the exact matcher's
cost grows much faster with size -- the software echo of the hardware
argument for separability.
"""

import pytest

from repro.sim.allocators import Request, SeparableAllocator
from repro.sim.matching import MaximumMatchingAllocator


def dense_requests(groups, members, resources):
    """A contended request pattern touching every group and resource."""
    return [
        Request(g, m, (g * members + m) % resources)
        for g in range(groups)
        for m in range(members)
    ]


@pytest.mark.parametrize("kind", ["separable", "maximum"])
@pytest.mark.parametrize("size", [(5, 2), (5, 8), (10, 4)],
                         ids=["p5v2", "p5v8", "p10v4"])
def test_allocator_throughput(benchmark, kind, size):
    groups, members = size
    cls = SeparableAllocator if kind == "separable" else MaximumMatchingAllocator
    allocator = cls(groups, members, groups)
    requests = dense_requests(groups, members, groups)

    grants = benchmark(allocator.allocate, requests)
    benchmark.extra_info["grants"] = len(grants)
    assert grants  # contended inputs always yield at least one grant
