"""Benchmark: Figure 15 -- 16 buffers per port, 4 VCs.

Paper shape: with 4 VCs x 4 buffers both VC routers reach ~70% of
capacity -- sufficient buffering covers the credit loop, so speculation's
shorter pipeline no longer buys throughput (only its latency advantage
remains).
"""

from conftest import BENCH_LOADS_HIGH, attach_curves, bench_measurement

from repro.experiments.figures import fig15
from repro.experiments.sweep import find_saturation


def test_fig15(benchmark, record_result):
    result = benchmark.pedantic(
        fig15,
        kwargs={"measurement": bench_measurement(), "loads": BENCH_LOADS_HIGH},
        rounds=1, iterations=1,
    )

    curves = {spec.label: curve for spec, curve in result.curves}
    vc = curves["VC (4vcsX4bufs)"]
    spec_vc = curves["specVC (4vcsX4bufs)"]

    # throughput parity between speculative and non-speculative
    assert abs(find_saturation(vc) - find_saturation(spec_vc)) <= 0.101
    # the latency advantage remains
    assert spec_vc.zero_load_latency() < vc.zero_load_latency()

    attach_curves(benchmark, result)
    record_result("fig15", result.render())
