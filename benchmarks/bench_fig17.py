"""Benchmark: Figure 17 -- single-cycle vs pipelined router models.

Paper shape: the unit-latency model reports ~16-cycle zero-load latency
(vs 29-36 pipelined) and saturates later (65% vs 50/55%) because it
ignores pipeline delay and buffer turnaround.
"""

from conftest import BENCH_LOADS, attach_curves, bench_measurement

from repro.experiments.figures import fig17
from repro.experiments.sweep import find_saturation


def test_fig17(benchmark, record_result):
    result = benchmark.pedantic(
        fig17,
        kwargs={"measurement": bench_measurement(), "loads": BENCH_LOADS},
        rounds=1, iterations=1,
    )

    curves = {spec.label: curve for spec, curve in result.curves}
    single_wh = curves["WH single-cycle (8 bufs)"]
    single_vc = curves["VC single-cycle (2vcsX4bufs)"]
    pipelined_wh = curves["WH (8 bufs)"]
    pipelined_vc = curves["VC (2vcsX4bufs)"]

    # the unit-latency model's optimistic zero-load latency (~16 cycles)
    assert abs(single_wh.zero_load_latency() - 16.5) < 1.5
    assert abs(single_vc.zero_load_latency() - 16.5) < 1.5
    assert single_vc.zero_load_latency() < 0.55 * pipelined_vc.zero_load_latency()
    # ...and its optimistic throughput
    assert find_saturation(single_vc) >= find_saturation(pipelined_vc)
    assert find_saturation(single_wh) >= find_saturation(pipelined_wh)

    attach_curves(benchmark, result)
    record_result("fig17", result.render())
