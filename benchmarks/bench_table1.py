"""Benchmark: regenerate Table 1 (parametric delay equations).

Verifies every published model-column entry reproduces within tolerance
and records the regenerated table.
"""

from repro.experiments.figures import render_table1_report, table1


def test_table1(benchmark, record_result):
    rows = benchmark(table1)

    for row in rows:
        if row.paper_model_tau4 is None:
            continue
        tolerance = 0.7 if "crossbar" in row.module else 0.15
        assert abs(row.deviation_tau4) <= tolerance, row
        benchmark.extra_info[row.module] = round(row.model_tau4, 2)

    record_result("table1", render_table1_report())
