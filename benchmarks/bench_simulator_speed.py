"""Benchmark: raw simulator throughput (cycles/second).

Not a paper figure -- a performance-regression guard for the cycle
kernel itself.  pytest-benchmark runs these with proper rounds (unlike
the single-shot figure benches), so changes to the hot path (router
phases, allocators, channels) show up as timing regressions.
"""

import pytest

from repro.sim.config import RouterKind, SimConfig
from repro.sim.network import Network

CYCLES = 120


def warmed_network(kind, vcs, load=0.3):
    network = Network(SimConfig(
        router_kind=kind, num_vcs=vcs, mesh_radix=8, buffers_per_vc=4,
        injection_fraction=load, seed=1,
    ))
    network.run(200)  # reach steady state before timing
    return network


@pytest.mark.parametrize(
    "kind,vcs",
    [
        (RouterKind.WORMHOLE, 1),
        (RouterKind.VIRTUAL_CHANNEL, 2),
        (RouterKind.SPECULATIVE_VC, 2),
    ],
    ids=["wormhole", "vc", "spec_vc"],
)
def test_cycle_throughput(benchmark, kind, vcs):
    network = warmed_network(kind, vcs)

    def run_block():
        network.run(CYCLES)

    benchmark.pedantic(run_block, rounds=5, iterations=1)
    benchmark.extra_info["cycles_per_round"] = CYCLES
    benchmark.extra_info["flits_ejected"] = network.total_flits_ejected()
    # sanity: traffic kept flowing during the timed region
    assert network.total_flits_ejected() > 0
