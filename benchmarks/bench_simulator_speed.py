"""Benchmark: raw simulator throughput (cycles/second).

Not a paper figure -- a performance-regression guard for the cycle
kernel itself.  pytest-benchmark runs these with proper rounds (unlike
the single-shot figure benches), so changes to the hot path (router
phases, allocators, channels) show up as timing regressions.

Run as a script to measure the fast vs reference steppers and maintain
``benchmarks/BENCH_simulator.json``::

    PYTHONPATH=src python benchmarks/bench_simulator_speed.py            # report
    PYTHONPATH=src python benchmarks/bench_simulator_speed.py --update   # rewrite JSON
    PYTHONPATH=src python benchmarks/bench_simulator_speed.py --check    # CI gate

``--check`` compares the *fast/reference speedup ratio* (not absolute
cycles/sec, which vary with hardware) against the committed baseline
and exits non-zero if any load's ratio regressed by more than 30%.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import pytest

from repro.sim.config import RouterKind, SimConfig
from repro.sim.network import Network

CYCLES = 120

#: Injection loads the script benchmark sweeps: light, moderate, and
#: near the speculative router's saturation point.
BENCH_LOADS = (0.1, 0.3, 0.42)
BENCH_JSON = Path(__file__).resolve().parent / "BENCH_simulator.json"

#: Allowed regression of the fast/reference speedup ratio before
#: ``--check`` fails (0.3 == 30%).
REGRESSION_TOLERANCE = 0.3

#: Absolute fast/reference speedup the specialized stepper must keep
#: delivering at the near-saturation load, independent of what the
#: committed baseline says.  This is the struct-of-arrays +
#: step-specialization acceptance bar: relative tolerance alone would
#: let the ratio decay 30% per accepted baseline refresh.
SPEEDUP_FLOOR = 1.5
SPEEDUP_FLOOR_LOAD = 0.42

#: Specialization-envelope variants benched at the near-saturation
#: load: the batched maximum-matching allocator and memoized o1turn
#: routing.  Their closures share less machinery with the default
#: separable/xy fast path, so each carries its own absolute floor
#: (lower than the default path's: maximum matching does strictly more
#: work per cycle in both steppers).
ENVELOPE_LOAD = 0.42
ENVELOPE_SPEEDUP_FLOOR = 1.3
ENVELOPE_VARIANTS = (
    ("maximum", dict(allocator_kind="maximum")),
    ("o1turn", dict(routing_function="o1turn")),
)


def warmed_network(kind, vcs, load=0.3, stepper="fast", **overrides):
    network = Network(SimConfig(
        router_kind=kind, num_vcs=vcs, mesh_radix=8, buffers_per_vc=4,
        injection_fraction=load, seed=1, stepper=stepper, **overrides,
    ))
    network.run(200)  # reach steady state before timing
    return network


def _stepper_pair(load, cycles=600, rounds=12, **overrides):
    """Best-of-``rounds`` (fast, reference) throughput, interleaved.

    Best-of rather than mean: scheduler noise on shared machines only
    ever makes a round *slower*, so the fastest round is the least
    contaminated estimate.  The steppers alternate within each round
    (swapping who goes first every round) -- a burst of background load
    then taxes both sides of the ratio instead of whichever stepper
    happened to be running, which is what keeps the speedup ratio (the
    gated quantity) stable on noisy machines.  Many short rounds beat
    few long ones for the same reason: the quiet windows best-of needs
    only have to fit one short round per stepper.
    """
    fast_net = warmed_network(
        RouterKind.SPECULATIVE_VC, 2, load, "fast", **overrides
    )
    ref_net = warmed_network(
        RouterKind.SPECULATIVE_VC, 2, load, "reference", **overrides
    )
    best_fast = 0.0
    best_ref = 0.0
    for round_index in range(rounds):
        pair = ((fast_net, True), (ref_net, False))
        if round_index % 2:
            pair = pair[::-1]
        for network, is_fast in pair:
            t0 = time.perf_counter()
            network.run(cycles)
            elapsed = time.perf_counter() - t0
            throughput = cycles / elapsed
            if is_fast:
                best_fast = max(best_fast, throughput)
            else:
                best_ref = max(best_ref, throughput)
    return best_fast, best_ref


def _point(load, fast, reference, variant=None):
    point = {
        "load": load,
        "fast_cycles_per_sec": round(fast, 1),
        "reference_cycles_per_sec": round(reference, 1),
        "speedup_fast_vs_reference": round(fast / reference, 3),
    }
    if variant is not None:
        point["variant"] = variant
    return point


def _point_key(point):
    """(variant, load) identity -- baseline points have no variant."""
    return (point.get("variant"), point["load"])


def _point_label(point):
    variant = point.get("variant")
    prefix = f"{variant} " if variant else ""
    return f"{prefix}load {point['load']}"


def measure():
    """Measure both steppers at each load, then the envelope variants."""
    points = []
    for load in BENCH_LOADS:
        fast, reference = _stepper_pair(load)
        points.append(_point(load, fast, reference))
    for variant, overrides in ENVELOPE_VARIANTS:
        fast, reference = _stepper_pair(ENVELOPE_LOAD, **overrides)
        points.append(_point(ENVELOPE_LOAD, fast, reference, variant))
    return points


def check(points, committed):
    """Return error messages for any load whose speedup regressed >30%.

    Gates on the fast/reference *ratio* so the check is insensitive to
    the absolute speed of the machine running it.  The near-saturation
    load additionally carries the absolute :data:`SPEEDUP_FLOOR` -- the
    specialized stepper's reason to exist is saturation-speed, so a
    committed baseline cannot ratchet that bar down.
    """
    errors = []
    committed_by_key = {_point_key(p): p for p in committed["points"]}
    for point in points:
        speedup = point["speedup_fast_vs_reference"]
        label = _point_label(point)
        if "variant" in point:
            absolute_floor, bar = ENVELOPE_SPEEDUP_FLOOR, "envelope"
        elif point["load"] == SPEEDUP_FLOOR_LOAD:
            absolute_floor, bar = SPEEDUP_FLOOR, "near-saturation"
        else:
            absolute_floor = None
        if absolute_floor is not None and speedup < absolute_floor:
            errors.append(
                f"{label}: fast/reference speedup "
                f"{speedup:.3f} below the absolute floor "
                f"{absolute_floor:.2f} for the {bar} load"
            )
        baseline = committed_by_key.get(_point_key(point))
        if baseline is None:
            errors.append(f"{label}: no committed baseline")
            continue
        floor = (baseline["speedup_fast_vs_reference"]
                 * (1.0 - REGRESSION_TOLERANCE))
        if speedup < floor:
            errors.append(
                f"{label}: fast/reference speedup "
                f"{speedup:.3f} below floor "
                f"{floor:.3f} (committed "
                f"{baseline['speedup_fast_vs_reference']:.3f} - 30%)"
            )
    return errors


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Simulator throughput benchmark (fast vs reference stepper)"
    )
    parser.add_argument(
        "--update", action="store_true",
        help=f"rewrite {BENCH_JSON.name} with fresh measurements",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail if the fast/reference speedup regressed >30% "
             "vs the committed baseline",
    )
    args = parser.parse_args(argv)

    committed = None
    if BENCH_JSON.exists():
        committed = json.loads(BENCH_JSON.read_text())

    points = measure()
    for point in points:
        print(
            f"{_point_label(point):<18}: fast "
            f"{point['fast_cycles_per_sec']:8.1f} c/s, reference "
            f"{point['reference_cycles_per_sec']:8.1f} c/s, speedup "
            f"{point['speedup_fast_vs_reference']:.2f}x"
        )

    if args.check:
        if committed is None:
            print(f"error: {BENCH_JSON} missing; run with --update first",
                  file=sys.stderr)
            return 2
        errors = check(points, committed)
        if errors:
            for error in errors:
                print(f"PERF REGRESSION: {error}", file=sys.stderr)
            return 1
        print("perf check ok: speedups within 30% of committed baseline")
        return 0

    if args.update:
        payload = {
            "benchmark": "8x8 speculative-VC mesh, 2 VCs, seed 1, "
                         "steady-state cycles/sec (best of 12 x 600 cycles, "
                         "fast/reference rounds interleaved); variant points "
                         "swap in the maximum-matching allocator or o1turn "
                         "routing at the near-saturation load",
            "points": points,
        }
        # The seed-baseline section is frozen evidence measured once
        # against the pre-event-wheel stepper; carry it forward.
        if committed and "seed_baseline" in committed:
            payload["seed_baseline"] = committed["seed_baseline"]
        BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {BENCH_JSON}")
    return 0


if __name__ == "__main__":
    sys.exit(main())


@pytest.mark.parametrize(
    "kind,vcs,overrides",
    [
        (RouterKind.WORMHOLE, 1, {}),
        (RouterKind.VIRTUAL_CHANNEL, 2, {}),
        (RouterKind.SPECULATIVE_VC, 2, {}),
        (RouterKind.SPECULATIVE_VC, 2, dict(allocator_kind="maximum")),
        (RouterKind.SPECULATIVE_VC, 2, dict(routing_function="o1turn")),
    ],
    ids=["wormhole", "vc", "spec_vc", "spec_vc_maximum", "spec_vc_o1turn"],
)
def test_cycle_throughput(benchmark, kind, vcs, overrides):
    network = warmed_network(kind, vcs, **overrides)

    def run_block():
        network.run(CYCLES)

    benchmark.pedantic(run_block, rounds=5, iterations=1)
    benchmark.extra_info["cycles_per_round"] = CYCLES
    benchmark.extra_info["flits_ejected"] = network.total_flits_ejected()
    # sanity: traffic kept flowing during the timed region
    assert network.total_flits_ejected() > 0
